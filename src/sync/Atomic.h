//===- sync/Atomic.h - Modeled shared variables ----------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared variables whose every access is a visible transition. This is
/// the modeled counterpart of the `volatile int x` / InterlockedRead
/// accesses in the paper's examples (Figures 3 and 8): checkers must
/// interleave at shared-memory accesses to find races like the stale-read
/// livelock of Figure 8.
///
/// `Atomic<T>` provides sequentially consistent load/store/RMW.
/// `SharedVar<T>` is an alias used by workloads for plain shared data --
/// the interleaving semantics are the same here, the distinct name only
/// documents intent.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_ATOMIC_H
#define FSMC_SYNC_ATOMIC_H

#include "runtime/Runtime.h"

#include <string>
#include <type_traits>

namespace fsmc {

/// A modeled shared variable with interleaving at every access.
template <typename T> class Atomic {
public:
  explicit Atomic(T Init = T(), std::string Name = "var")
      : Id(Runtime::current().newObjectId(std::move(Name))), Value(Init) {}

  /// Visible load. For race detection an atomic load is an *acquire*: it
  /// synchronizes with prior stores to the same variable, matching the
  /// seq-cst semantics the model gives these accesses. Atomic accesses
  /// are therefore never themselves race candidates -- only PlainVar
  /// (sync/Plain.h) accesses are. Under --memory=tso|pso the thread's own
  /// buffered store to this variable forwards (newest entry wins) without
  /// reading memory.
  T load() {
    Runtime &RT = Runtime::current();
    RT.schedulePoint(makeOp(OpKind::VarLoad, Id));
    RT.raceAcquire(Id);
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>)
      if (RT.memory() != MemoryModel::Sc) {
        int64_t V;
        if (RT.forwardedLoad(Id, V))
          return T(V);
      }
    return Value;
  }

  /// Visible store; a *release* for race detection. Under --memory=tso|pso
  /// (integral/enum T) the store enqueues into the calling thread's store
  /// buffer instead of writing memory, and its release edge is deferred to
  /// the commit: synchronizing through a still-buffered store must not
  /// order the storer's earlier writes (docs/MEMORY.md).
  void store(T V) {
    Runtime &RT = Runtime::current();
    RT.schedulePoint(makeOp(OpKind::VarStore, Id, auxOf(V)));
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>)
      if (RT.memory() != MemoryModel::Sc) {
        RT.bufferStore(Id, int64_t(V), &commitThunk, this, /*Plain=*/false);
        return;
      }
    RT.raceRelease(Id);
    Value = V;
  }

  // The RMW operations below need no weak-memory branch: VarRmw is a
  // fencing kind (runtime/PendingOp.h), so the runtime drains the calling
  // thread's buffer before the effect runs -- an interlocked instruction
  // on real hardware implies a full barrier -- and the bodies then read
  // and write memory directly.

  /// Atomic swap; one visible transition, acquire+release.
  T exchange(T V) {
    Runtime &RT = Runtime::current();
    RT.schedulePoint(makeOp(OpKind::VarRmw, Id, auxOf(V)));
    RT.raceAcquire(Id);
    RT.raceRelease(Id);
    T Old = Value;
    Value = V;
    return Old;
  }

  /// Atomic compare-and-swap; one visible transition, acquire+release. On
  /// failure \p Expected is updated with the observed value.
  bool compareExchange(T &Expected, T Desired) {
    Runtime &RT = Runtime::current();
    RT.schedulePoint(makeOp(OpKind::VarRmw, Id, auxOf(Desired)));
    RT.raceAcquire(Id);
    RT.raceRelease(Id);
    if (Value == Expected) {
      Value = Desired;
      return true;
    }
    Expected = Value;
    return false;
  }

  /// Atomic fetch-add (integral T only); one visible transition,
  /// acquire+release.
  T fetchAdd(T Delta) {
    static_assert(std::is_integral_v<T>, "fetchAdd requires an integer");
    Runtime &RT = Runtime::current();
    RT.schedulePoint(makeOp(OpKind::VarRmw, Id, auxOf(Delta)));
    RT.raceAcquire(Id);
    RT.raceRelease(Id);
    T Old = Value;
    Value = T(Value + Delta);
    return Old;
  }

  /// Non-visible read: no scheduling point. For state extractors,
  /// invariant checks at quiescence, and thread-local fast paths that are
  /// deliberately *not* interleaving points (used to seed the Figure 8
  /// stale-read bug).
  T raw() const { return Value; }

  /// Non-visible write for initialization before threads race.
  void rawStore(T V) { Value = V; }

  int objectId() const { return Id; }

private:
  static int64_t auxOf(const T &V) {
    if constexpr (std::is_integral_v<T> || std::is_enum_v<T>)
      return int64_t(V);
    else
      return 0;
  }

  /// Deferred-store target for Runtime::bufferStore; only ever
  /// instantiated for integral/enum T (the buffered-store path).
  static void commitThunk(void *Obj, int64_t V) {
    static_cast<Atomic *>(Obj)->Value = T(V);
  }

  int Id;
  T Value;
};

/// Plain shared data accessed by multiple threads; same modeling as
/// Atomic, the alias documents workload intent.
template <typename T> using SharedVar = Atomic<T>;

} // namespace fsmc

#endif // FSMC_SYNC_ATOMIC_H
