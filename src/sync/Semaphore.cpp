//===- sync/Semaphore.cpp -------------------------------------------------===//

#include "sync/Semaphore.h"

using namespace fsmc;

Semaphore::Semaphore(int Initial, std::string Name)
    : Id(Runtime::current().newObjectId(std::move(Name))), Count(Initial) {
  assert(Initial >= 0 && "negative initial semaphore count");
}

void Semaphore::wait() {
  Runtime &RT = Runtime::current();
  if (Count == 0)
    RT.noteContended(OpKind::SemWait);
  RT.schedulePoint(
      makeGuardedOp(OpKind::SemWait, Id, &Semaphore::isPositive, this));
  assert(Count > 0 && "scheduled with zero semaphore count");
  RT.raceAcquire(Id);
  --Count;
}

bool Semaphore::tryWait() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::SemWait, Id, /*Aux=*/1));
  if (Count == 0)
    return false;
  RT.raceAcquire(Id);
  --Count;
  return true;
}

void Semaphore::post() {
  Runtime &RT = Runtime::current();
  RT.schedulePoint(makeOp(OpKind::SemPost, Id));
  RT.raceRelease(Id);
  ++Count;
}
