//===- sync/Semaphore.h - Modeled counting semaphore -----------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A counting semaphore with visible wait/post transitions. `wait` is
/// enabled iff the count is positive; the consuming decrement and any
/// competing waiter's disabling happen within one transition.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_SEMAPHORE_H
#define FSMC_SYNC_SEMAPHORE_H

#include "runtime/Runtime.h"

#include <string>

namespace fsmc {

/// A counting semaphore. Construct inside a test execution only.
class Semaphore {
public:
  explicit Semaphore(int Initial = 0, std::string Name = "sem");

  /// P(): blocks (disabled) while the count is zero, then decrements.
  void wait();

  /// Non-blocking P(): always enabled. \returns true if a unit was taken.
  bool tryWait();

  /// V(): increments the count; always enabled.
  void post();

  int count() const { return Count; }
  int objectId() const { return Id; }

private:
  static bool isPositive(const void *Ctx) {
    return static_cast<const Semaphore *>(Ctx)->Count > 0;
  }

  int Id;
  int Count;
};

} // namespace fsmc

#endif // FSMC_SYNC_SEMAPHORE_H
