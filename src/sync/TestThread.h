//===- sync/TestThread.h - Thread spawn/join and yields --------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread handles for test programs, plus the yield operations the good
/// samaritan property is defined over: `yieldNow()` (an explicit processor
/// yield) and `sleepFor()` (a finite-timeout sleep). Both are *yielding*
/// visible operations; placing one on the back edge of every spin loop is
/// what makes a program good-samaritan-conforming (Section 2).
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_TESTTHREAD_H
#define FSMC_SYNC_TESTTHREAD_H

#include "runtime/Runtime.h"

#include <functional>
#include <string>

namespace fsmc {

/// A joinable handle to a spawned test thread.
class TestThread {
public:
  TestThread() = default;

  /// Spawns a thread running \p Body. The child does not run until the
  /// scheduler first picks it.
  explicit TestThread(std::function<void()> Body, std::string Name = "");

  TestThread(TestThread &&O) noexcept;
  TestThread &operator=(TestThread &&O) noexcept;
  TestThread(const TestThread &) = delete;
  TestThread &operator=(const TestThread &) = delete;

  /// Waits (disabled) until the thread finishes. Each handle may be
  /// joined once.
  void join();

  bool joinable() const { return Id >= 0 && !Joined; }
  Tid tid() const { return Id; }

private:
  static bool targetFinished(const void *Ctx);

  Runtime *RT = nullptr;
  Tid Id = -1;
  bool Joined = false;
};

/// Explicit processor yield: a yielding, always-enabled transition.
void yieldNow();

/// Sleep with a finite timeout; like yieldNow for scheduling purposes.
/// \p Ticks is recorded in the trace but has no semantic effect (the
/// demonic scheduler may "expire" any finite timeout immediately).
void sleepFor(int Ticks = 1);

} // namespace fsmc

#endif // FSMC_SYNC_TESTTHREAD_H
