//===- sync/Mutex.h - Modeled mutual-exclusion lock ------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mutex whose operations are visible transitions of the checker.
///
/// `lock` is a blocking acquire: the thread is *disabled* while another
/// thread holds the mutex (this is how transitions of one thread disable
/// others, feeding the D(u) sets of Algorithm 1). `tryLock` is the
/// non-blocking TryAcquire of Figure 1: always enabled, may fail.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_SYNC_MUTEX_H
#define FSMC_SYNC_MUTEX_H

#include "runtime/Runtime.h"

#include <string>

namespace fsmc {

/// A non-recursive mutex. Construct inside a test execution only.
class Mutex {
public:
  explicit Mutex(std::string Name = "mutex");

  /// Blocking acquire. The calling thread is disabled until the mutex is
  /// free; acquisition is one visible transition.
  void lock();

  /// Non-blocking acquire; one always-enabled visible transition.
  /// \returns true if the mutex was acquired.
  bool tryLock();

  /// Release. Reports a safety violation if the caller is not the holder.
  void unlock();

  /// \returns the holding thread, or -1. Safe to call from state
  /// extractors (reads only).
  Tid holder() const { return Holder; }
  bool isHeld() const { return Holder >= 0; }

  int objectId() const { return Id; }

private:
  friend class CondVar;
  static bool isFree(const void *Ctx) {
    return static_cast<const Mutex *>(Ctx)->Holder < 0;
  }

  int Id;
  Tid Holder = -1;
};

} // namespace fsmc

#endif // FSMC_SYNC_MUTEX_H
