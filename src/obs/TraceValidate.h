//===- obs/TraceValidate.h - Trace schema validation -----------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained JSON parser (values, no streaming) plus validation of
/// the JsonlTraceSink output against the schema in docs/OBSERVABILITY.md.
/// Lives in the library, not the tests, so CI can check a trace with zero
/// external dependencies (no Python/jq) and the CLI could grow a
/// --validate-trace mode for free.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_TRACEVALIDATE_H
#define FSMC_OBS_TRACEVALIDATE_H

#include <string>
#include <string_view>
#include <vector>

namespace fsmc {
namespace obs {

/// A parsed JSON value. Object keys keep insertion order.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type T = Type::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  bool isObject() const { return T == Type::Object; }
  /// Object member lookup; null if absent or not an object.
  const JsonValue *find(std::string_view Key) const;
};

/// Parses \p Text as a single JSON value (trailing whitespace allowed).
/// On failure returns false and describes the problem in \p Err.
bool parseJson(std::string_view Text, JsonValue &Out, std::string &Err);

/// Reads and parses an entire file. \p Err gets "cannot read ..." or the
/// parse diagnostic.
bool parseJsonFile(const std::string &Path, JsonValue &Out,
                   std::string &Err);

/// Validates \p Path as a JsonlTraceSink trace: a JSON array whose
/// elements carry name/cat/ph/ts/pid/tid with the right types, "X" events
/// a dur, and the leading/terminal meta records present. \p EventCount
/// (optional) receives the number of non-meta events.
bool validateTraceFile(const std::string &Path, std::string &Err,
                       size_t *EventCount = nullptr);

/// Loads the trace and returns one canonical string per non-meta event:
/// keys sorted, and -- when \p StripWorkerAndTime -- the pid/ts fields
/// dropped. Events in categories listed in \p DropCategories (e.g. "par",
/// whose events only exist in parallel runs) are skipped. This is the
/// normalization under which a parallel trace must be a permutation of
/// the serial one.
bool loadNormalizedEvents(const std::string &Path, bool StripWorkerAndTime,
                          const std::vector<std::string> &DropCategories,
                          std::vector<std::string> &Out, std::string &Err);

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_TRACEVALIDATE_H
