//===- obs/HtmlReport.cpp -------------------------------------------------===//

#include "obs/HtmlReport.h"

#include "core/Checker.h"
#include "obs/SearchProfile.h"
#include "runtime/PendingOp.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

using namespace fsmc;
using namespace fsmc::obs;

static void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[1024];
  va_list Ap;
  va_start(Ap, Fmt);
  vsnprintf(Buf, sizeof Buf, Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

static std::string esc(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    switch (C) {
    case '&': Out += "&amp;"; break;
    case '<': Out += "&lt;"; break;
    case '>': Out += "&gt;"; break;
    case '"': Out += "&quot;"; break;
    default: Out += C;
    }
  return Out;
}

/// One table row with a proportional bar: label, count, bar scaled to
/// \p Max, plus an extra cell (pass "" to skip).
static void barRow(std::string &Out, const std::string &Label, uint64_t Count,
                   uint64_t Max, const std::string &Extra) {
  double Pct = Max ? 100.0 * double(Count) / double(Max) : 0.0;
  appendf(Out,
          "<tr><td>%s</td><td class=\"n\">%" PRIu64
          "</td><td class=\"bar\"><div style=\"width:%.1f%%\"></div></td>",
          esc(Label).c_str(), Count, Pct);
  if (!Extra.empty())
    appendf(Out, "<td class=\"n\">%s</td>", Extra.c_str());
  Out += "</tr>\n";
}

std::string fsmc::obs::renderHtmlReport(const CheckResult &R,
                                        const CheckerOptions &Opts,
                                        const std::string &ProgramName) {
  const SearchStats &S = R.Stats;
  std::string Out;
  Out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n";
  appendf(Out, "<title>fsmc search report: %s</title>\n",
          esc(ProgramName).c_str());
  Out += "<style>\n"
         "body{font:14px/1.4 -apple-system,Segoe UI,sans-serif;margin:2em;"
         "max-width:60em;color:#222}\n"
         "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em;"
         "border-bottom:1px solid #ddd;padding-bottom:.2em}\n"
         "table{border-collapse:collapse;width:100%}\n"
         "td,th{padding:.2em .6em;text-align:left;vertical-align:top}\n"
         "td.n,th.n{text-align:right;font-variant-numeric:tabular-nums}\n"
         "td.bar{width:40%}td.bar div{background:#4a90d9;height:.9em;"
         "min-width:1px}\n"
         "tr:nth-child(even){background:#f6f8fa}\n"
         ".verdict-pass{color:#1a7f37}.verdict-bug{color:#cf222e}\n"
         "</style>\n</head>\n<body>\n";

  appendf(Out, "<h1>fsmc search report: %s</h1>\n", esc(ProgramName).c_str());
  bool Pass = R.Kind == Verdict::Pass;
  appendf(Out, "<p>verdict: <strong class=\"verdict-%s\">%s</strong>",
          Pass ? "pass" : "bug", verdictName(R.Kind));
  if (R.Bug)
    appendf(Out, " &mdash; %s", esc(R.Bug->Message).c_str());
  Out += "</p>\n";

  Out += "<h2>Run summary</h2>\n<table>\n";
  appendf(Out, "<tr><td>executions</td><td class=\"n\">%" PRIu64
               "</td></tr>\n", S.Executions);
  appendf(Out, "<tr><td>transitions</td><td class=\"n\">%" PRIu64
               "</td></tr>\n", S.Transitions);
  appendf(Out, "<tr><td>max depth</td><td class=\"n\">%" PRIu64
               "</td></tr>\n", S.MaxDepth);
  if (S.PorBranchesPruned)
    appendf(Out, "<tr><td>POR branches pruned</td><td class=\"n\">%" PRIu64
                 "</td></tr>\n", S.PorBranchesPruned);
  if (S.DistinctStates)
    appendf(Out, "<tr><td>distinct states</td><td class=\"n\">%" PRIu64
                 "</td></tr>\n", S.DistinctStates);
  if (S.RacesFound)
    appendf(Out, "<tr><td>data races found</td><td class=\"n\">%" PRIu64
                 "</td></tr>\n", S.RacesFound);
  appendf(Out, "<tr><td>wall time</td><td class=\"n\">%.3f s</td></tr>\n",
          S.Seconds);
  appendf(Out, "<tr><td>search exhausted</td><td class=\"n\">%s</td></tr>\n",
          S.SearchExhausted ? "yes" : "no");
  Out += "</table>\n";

  if (Opts.Estimate && S.EstimateMass > 0 && S.Executions) {
    double Mass = std::min(S.EstimateMass, 1.0);
    uint64_t Est = uint64_t(std::llround(double(S.Executions) /
                                         S.EstimateMass));
    Out += "<h2>Tree-size estimate</h2>\n<table>\n";
    appendf(Out, "<tr><td>explored mass</td><td class=\"n\">%.6g</td></tr>\n",
            S.EstimateMass);
    appendf(Out, "<tr><td>estimated total executions</td><td class=\"n\">"
                 "%" PRIu64 "</td></tr>\n", Est);
    appendf(Out, "<tr><td>estimated progress</td><td class=\"n\">%.1f%%"
                 "</td></tr>\n", 100.0 * Mass);
    Out += "</table>\n<p>Knuth weighted-backtrack estimate; early in a run "
           "it is biased by whichever subtrees DFS happens to finish first "
           "(see docs/OBSERVABILITY.md).</p>\n";
  }

  if (R.Profile) {
    const SearchProfile &P = *R.Profile;

    uint64_t MaxBP = P.Choose.BranchPoints;
    for (const SearchProfile::OpClassStats &C : P.Ops)
      MaxBP = std::max(MaxBP, C.BranchPoints);
    Out += "<h2>Branch points by operation class</h2>\n"
           "<table>\n<tr><th>op class</th><th class=\"n\">branch points"
           "</th><th></th><th class=\"n\">alternatives opened</th></tr>\n";
    for (size_t I = 0; I < OpKindSlots; ++I) {
      const SearchProfile::OpClassStats &C = P.Ops[I];
      if (C.empty())
        continue;
      std::string Extra;
      appendf(Extra, "%" PRIu64, C.Alternatives);
      barRow(Out, opKindName(OpKind(I)), C.BranchPoints, MaxBP, Extra);
    }
    if (!P.Choose.empty()) {
      std::string Extra;
      appendf(Extra, "%" PRIu64, P.Choose.Alternatives);
      barRow(Out, "choose (data)", P.Choose.BranchPoints, MaxBP, Extra);
    }
    Out += "</table>\n";

    bool AnySleep = false;
    for (const SearchProfile::OpClassStats &C : P.Ops)
      AnySleep = AnySleep || C.PorSleepHits;
    if (AnySleep) {
      uint64_t MaxSleep = 0;
      for (const SearchProfile::OpClassStats &C : P.Ops)
        MaxSleep = std::max(MaxSleep, C.PorSleepHits);
      Out += "<h2>POR pruning by operation class</h2>\n"
             "<table>\n<tr><th>op class</th><th class=\"n\">sleeping "
             "candidates filtered</th><th></th></tr>\n";
      for (size_t I = 0; I < OpKindSlots; ++I)
        if (P.Ops[I].PorSleepHits)
          barRow(Out, opKindName(OpKind(I)), P.Ops[I].PorSleepHits, MaxSleep,
                 "");
      Out += "</table>\n";
    }

    if (!P.Objects.empty()) {
      uint64_t MaxObj = 0;
      for (const auto &[Name, C] : P.Objects)
        MaxObj = std::max(MaxObj, C.BranchPoints);
      Out += "<h2>Branch points by object</h2>\n"
             "<table>\n<tr><th>object</th><th class=\"n\">branch points"
             "</th><th></th><th class=\"n\">alternatives opened</th></tr>\n";
      for (const auto &[Name, C] : P.Objects) {
        std::string Extra;
        appendf(Extra, "%" PRIu64, C.Alternatives);
        barRow(Out, Name, C.BranchPoints, MaxObj, Extra);
      }
      Out += "</table>\n";
    }

    size_t LastBF = 0;
    uint64_t MaxBF = 0;
    for (size_t I = 0; I < ProfileBranchBuckets; ++I) {
      if (P.BranchFactor[I])
        LastBF = I + 1;
      MaxBF = std::max(MaxBF, P.BranchFactor[I]);
    }
    if (LastBF) {
      Out += "<h2>Branch-factor distribution</h2>\n"
             "<table>\n<tr><th>alternatives</th><th class=\"n\">branch "
             "points</th><th></th></tr>\n";
      for (size_t I = 0; I < LastBF; ++I) {
        std::string Label;
        if (I + 1 == ProfileBranchBuckets)
          appendf(Label, ">= %zu", I + 2);
        else
          appendf(Label, "%zu", I + 2);
        barRow(Out, Label, P.BranchFactor[I], MaxBF, "");
      }
      Out += "</table>\n";
    }

    size_t LastD = 0;
    uint64_t MaxD = 0;
    for (size_t I = 0; I < ProfileDepthBuckets; ++I) {
      if (P.Depth[I])
        LastD = I + 1;
      MaxD = std::max(MaxD, P.Depth[I]);
    }
    if (LastD) {
      Out += "<h2>Branch-point depth distribution</h2>\n"
             "<table>\n<tr><th>depth</th><th class=\"n\">branch points"
             "</th><th></th></tr>\n";
      for (size_t I = 0; I < LastD; ++I) {
        std::string Label;
        uint64_t Lo = (uint64_t(1) << I) - 1;
        uint64_t Hi = (uint64_t(1) << (I + 1)) - 2;
        if (Lo == Hi)
          appendf(Label, "%" PRIu64, Lo);
        else
          appendf(Label, "%" PRIu64 "-%" PRIu64, Lo, Hi);
        barRow(Out, Label, P.Depth[I], MaxD, "");
      }
      Out += "</table>\n";
    }
  }

  Out += "</body>\n</html>\n";
  return Out;
}
