//===- obs/StatsJson.h - Machine-readable run reports ----------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a CheckResult (verdict, SearchStats, bug report, live counter
/// snapshot) as one JSON object -- the `--stats-json=FILE|-` output of
/// fsmc_run and the format bench/CI tooling diffs across revisions. The
/// schema is documented in docs/OBSERVABILITY.md; `schema` is bumped on
/// incompatible changes.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_STATSJSON_H
#define FSMC_OBS_STATSJSON_H

#include "core/Checker.h"

#include <string>
#include <string_view>

namespace fsmc {

class OutStream;

namespace obs {

class Observer;

/// Appends \p S to \p Out with JSON string escaping (quotes, backslash,
/// control characters) but without the surrounding quotes.
void appendJsonEscaped(std::string &Out, std::string_view S);

/// Why the search stopped, as a stable machine-readable token:
/// "bug_found", "time_budget_exhausted", "execution_cap_hit",
/// "search_exhausted", or "stopped".
const char *stopReason(const CheckResult &R);

/// Human-readable version of stopReason for the run summary; empty for
/// an exhausted bug-free search (the unremarkable case).
std::string budgetNote(const CheckResult &R, const CheckerOptions &Opts);

/// Context for the report; all fields optional except Program.
struct StatsJsonInfo {
  std::string Program;
  const CheckerOptions *Options = nullptr; ///< Echoed into "options".
  const Observer *Obs = nullptr;           ///< Adds the "counters" section.
  bool Replay = false;                     ///< Run was a schedule replay.
  /// Adds the "timing" section (elapsed_ms, execs_per_sec). Off by
  /// default -- wall-clock numbers vary run to run, and default reports
  /// are kept byte-identical across revisions (the PR 3 convention);
  /// opt in via fsmc_run --timing.
  bool Timing = false;
};

/// Renders the full report as a pretty-printed JSON object (trailing
/// newline included).
std::string renderStatsJson(const CheckResult &R, const StatsJsonInfo &Info);

/// renderStatsJson written to \p OS and flushed.
void writeStatsJson(OutStream &OS, const CheckResult &R,
                    const StatsJsonInfo &Info);

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_STATSJSON_H
