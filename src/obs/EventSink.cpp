//===- obs/EventSink.cpp --------------------------------------------------===//

#include "obs/EventSink.h"

#include "support/OutStream.h"

#include <cstdio>

using namespace fsmc;
using namespace fsmc::obs;

EventSink::~EventSink() = default;

const char *fsmc::obs::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Transition:
    return "transition";
  case EventKind::ExecutionEnd:
    return "execution";
  case EventKind::FairEdgeAdd:
    return "fair_edge_add";
  case EventKind::FairEdgeRemove:
    return "fair_edge_remove";
  case EventKind::Divergence:
    return "divergence";
  case EventKind::BugFound:
    return "bug";
  case EventKind::WorkItemStart:
    return "work_item";
  case EventKind::Donation:
    return "donation";
  }
  return "?";
}

const char *fsmc::obs::eventCategory(EventKind K) {
  switch (K) {
  case EventKind::Transition:
    return "transition";
  case EventKind::ExecutionEnd:
    return "execution";
  case EventKind::FairEdgeAdd:
  case EventKind::FairEdgeRemove:
    return "fairness";
  case EventKind::Divergence:
  case EventKind::BugFound:
    return "verdict";
  case EventKind::WorkItemStart:
  case EventKind::Donation:
    return "par";
  }
  return "?";
}

JsonlTraceSink::JsonlTraceSink(const std::string &Path) {
  if (Path == "-") {
    Out = &outs();
  } else {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F)
      return;
    Owned = std::make_unique<OutStream>(F, /*Owned=*/true);
    Out = Owned.get();
  }
  // Array format with a leading version record; every later line is one
  // event object followed by a comma, so close() can append the final
  // summary record and the terminator to form strictly valid JSON.
  *Out << "[\n{\"name\":\"fsmc_trace\",\"cat\":\"meta\",\"ph\":\"i\","
          "\"s\":\"g\",\"ts\":0,\"pid\":0,\"tid\":0,"
          "\"args\":{\"version\":1}},\n";
}

JsonlTraceSink::~JsonlTraceSink() { close(); }

void JsonlTraceSink::event(const ObsEvent &E) {
  if (!Out)
    return;
  char Buf[512];
  int N = 0;
  switch (E.Kind) {
  case EventKind::Transition:
    // A complete ("X") span of one logical tick per transition: the
    // Perfetto track of worker E.Worker shows the fiber interleaving.
    N = std::snprintf(Buf, sizeof(Buf),
                      "{\"name\":\"%s\",\"cat\":\"transition\",\"ph\":\"X\","
                      "\"ts\":%llu,\"dur\":1,\"pid\":%u,\"tid\":%d,"
                      "\"args\":{\"step\":%llu,\"obj\":%d}},\n",
                      opKindName(E.Op), (unsigned long long)E.Ts, E.Worker,
                      E.Thread, (unsigned long long)E.ArgA, E.Object);
    break;
  case EventKind::ExecutionEnd: {
    char MassBuf[48] = "";
    if (E.Mass >= 0)
      std::snprintf(MassBuf, sizeof(MassBuf), ",\"mass\":%.9g", E.Mass);
    N = std::snprintf(Buf, sizeof(Buf),
                      "{\"name\":\"execution\",\"cat\":\"execution\","
                      "\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":%u,"
                      "\"tid\":%d,\"args\":{\"steps\":%llu,\"end\":\"%s\"%s"
                      "}},\n",
                      (unsigned long long)E.Ts, (unsigned long long)E.Dur,
                      E.Worker, E.Thread, (unsigned long long)E.ArgA,
                      E.Detail ? E.Detail : "?", MassBuf);
    break;
  }
  default:
    N = std::snprintf(
        Buf, sizeof(Buf),
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%llu,\"pid\":%u,\"tid\":%d,"
        "\"args\":{\"a\":%llu,\"b\":%llu%s%s%s}},\n",
        eventKindName(E.Kind), eventCategory(E.Kind),
        (unsigned long long)E.Ts, E.Worker, E.Thread,
        (unsigned long long)E.ArgA, (unsigned long long)E.ArgB,
        E.Detail ? ",\"detail\":\"" : "", E.Detail ? E.Detail : "",
        E.Detail ? "\"" : "");
    break;
  }
  if (N <= 0)
    return;
  // OutStream::write is atomic across streams; the sink mutex only keeps
  // the Emitted count consistent with the lines actually written.
  std::lock_guard<std::mutex> Lock(M);
  Out->write(Buf, size_t(N));
  ++Emitted;
}

void JsonlTraceSink::flush() {
  std::lock_guard<std::mutex> Lock(M);
  if (Out)
    Out->flush();
}

void JsonlTraceSink::close() {
  std::lock_guard<std::mutex> Lock(M);
  if (!Out || Closed) {
    Closed = true;
    return;
  }
  char Buf[160];
  int N = std::snprintf(
      Buf, sizeof(Buf),
      "{\"name\":\"fsmc_trace_end\",\"cat\":\"meta\",\"ph\":\"i\","
      "\"s\":\"g\",\"ts\":0,\"pid\":0,\"tid\":0,"
      "\"args\":{\"events\":%llu}}\n]\n",
      (unsigned long long)Emitted);
  if (N > 0)
    Out->write(Buf, size_t(N));
  Out->flush();
  Owned.reset(); // Closes the file; stdout stays open for the caller.
  Out = nullptr;
  Closed = true;
}
