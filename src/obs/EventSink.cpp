//===- obs/EventSink.cpp --------------------------------------------------===//

#include "obs/EventSink.h"

using namespace fsmc;
using namespace fsmc::obs;

EventSink::~EventSink() = default;

const char *fsmc::obs::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Transition:
    return "transition";
  case EventKind::ExecutionEnd:
    return "execution";
  case EventKind::FairEdgeAdd:
    return "fair_edge_add";
  case EventKind::FairEdgeRemove:
    return "fair_edge_remove";
  case EventKind::Divergence:
    return "divergence";
  case EventKind::BugFound:
    return "bug";
  case EventKind::WorkItemStart:
    return "work_item";
  case EventKind::Donation:
    return "donation";
  }
  return "?";
}

const char *fsmc::obs::eventCategory(EventKind K) {
  switch (K) {
  case EventKind::Transition:
    return "transition";
  case EventKind::ExecutionEnd:
    return "execution";
  case EventKind::FairEdgeAdd:
  case EventKind::FairEdgeRemove:
    return "fairness";
  case EventKind::Divergence:
  case EventKind::BugFound:
    return "verdict";
  case EventKind::WorkItemStart:
  case EventKind::Donation:
    return "par";
  }
  return "?";
}

JsonlTraceSink::JsonlTraceSink(const std::string &Path) {
  F = std::fopen(Path.c_str(), "w");
  if (!F)
    return;
  // Array format with a leading version record; every later line is one
  // event object followed by a comma, so close() can append the final
  // summary record and the terminator to form strictly valid JSON.
  std::fputs("[\n{\"name\":\"fsmc_trace\",\"cat\":\"meta\",\"ph\":\"i\","
             "\"s\":\"g\",\"ts\":0,\"pid\":0,\"tid\":0,"
             "\"args\":{\"version\":1}},\n",
             F);
}

JsonlTraceSink::~JsonlTraceSink() { close(); }

void JsonlTraceSink::event(const ObsEvent &E) {
  if (!F)
    return;
  char Buf[512];
  int N = 0;
  switch (E.Kind) {
  case EventKind::Transition:
    // A complete ("X") span of one logical tick per transition: the
    // Perfetto track of worker E.Worker shows the fiber interleaving.
    N = std::snprintf(Buf, sizeof(Buf),
                      "{\"name\":\"%s\",\"cat\":\"transition\",\"ph\":\"X\","
                      "\"ts\":%llu,\"dur\":1,\"pid\":%u,\"tid\":%d,"
                      "\"args\":{\"step\":%llu,\"obj\":%d}},\n",
                      opKindName(E.Op), (unsigned long long)E.Ts, E.Worker,
                      E.Thread, (unsigned long long)E.ArgA, E.Object);
    break;
  case EventKind::ExecutionEnd:
    N = std::snprintf(Buf, sizeof(Buf),
                      "{\"name\":\"execution\",\"cat\":\"execution\","
                      "\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":%u,"
                      "\"tid\":%d,\"args\":{\"steps\":%llu,\"end\":\"%s\"}},\n",
                      (unsigned long long)E.Ts, (unsigned long long)E.Dur,
                      E.Worker, E.Thread, (unsigned long long)E.ArgA,
                      E.Detail ? E.Detail : "?");
    break;
  default:
    N = std::snprintf(
        Buf, sizeof(Buf),
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%llu,\"pid\":%u,\"tid\":%d,"
        "\"args\":{\"a\":%llu,\"b\":%llu%s%s%s}},\n",
        eventKindName(E.Kind), eventCategory(E.Kind),
        (unsigned long long)E.Ts, E.Worker, E.Thread,
        (unsigned long long)E.ArgA, (unsigned long long)E.ArgB,
        E.Detail ? ",\"detail\":\"" : "", E.Detail ? E.Detail : "",
        E.Detail ? "\"" : "");
    break;
  }
  if (N <= 0)
    return;
  std::lock_guard<std::mutex> Lock(M);
  std::fwrite(Buf, 1, size_t(N), F);
  ++Emitted;
}

void JsonlTraceSink::flush() {
  std::lock_guard<std::mutex> Lock(M);
  if (F)
    std::fflush(F);
}

void JsonlTraceSink::close() {
  std::lock_guard<std::mutex> Lock(M);
  if (!F || Closed) {
    Closed = true;
    return;
  }
  std::fprintf(F,
               "{\"name\":\"fsmc_trace_end\",\"cat\":\"meta\",\"ph\":\"i\","
               "\"s\":\"g\",\"ts\":0,\"pid\":0,\"tid\":0,"
               "\"args\":{\"events\":%llu}}\n]\n",
               (unsigned long long)Emitted);
  std::fflush(F);
  std::fclose(F);
  F = nullptr;
  Closed = true;
}
