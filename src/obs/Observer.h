//===- obs/Observer.h - Observability hub for one checker run --*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Observer ties the observability pieces together for one checker
/// run: the sharded CounterRegistry, an optional EventSink for the
/// structured trace, and the knobs that gate the more expensive
/// instrumentation (per-transition events, step timing).
///
/// Attachment is a single pointer on CheckerOptions (`Opts.Obs`); the
/// checker never owns it. With no observer attached every hook in the
/// engine is one null-pointer test -- the disabled path is guarded by the
/// micro_scheduler bench (see docs/OBSERVABILITY.md for the measured
/// overhead).
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_OBSERVER_H
#define FSMC_OBS_OBSERVER_H

#include "obs/Counters.h"
#include "obs/EventSink.h"

namespace fsmc {
namespace obs {

class Observer {
public:
  struct Config {
    /// Shards to allocate: worker ids are 1..Jobs in a parallel search,
    /// 0 for the serial explorer / driver. 65 covers Jobs up to the
    /// 64-thread ceiling.
    size_t MaxWorkers = 65;
    /// Destination for structured events; null = counters only.
    EventSink *Sink = nullptr;
    /// Emit one span per transition (the Perfetto fiber-switch view).
    /// Only meaningful with a sink; the dominant trace volume knob.
    bool TraceTransitions = true;
    /// Fill the scheduling-point latency histogram. Costs two clock
    /// reads per transition, so off by default.
    bool StepTiming = false;
    /// Fill the wall-time phase buckets (replay / execute / race-check /
    /// snapshot). Two clock reads per execution plus two per
    /// coverage-signature lookup, so off by default.
    bool PhaseTiming = false;
  };

  Observer() : Observer(Config()) {}
  explicit Observer(const Config &C) : Cfg(C), Reg(C.MaxWorkers) {}

  WorkerCounters &shard(unsigned Worker) { return Reg.shard(Worker); }
  CounterSnapshot snapshot() const { return Reg.snapshot(); }

  EventSink *sink() const { return Cfg.Sink; }
  bool traceTransitions() const { return Cfg.Sink && Cfg.TraceTransitions; }
  bool stepTiming() const { return Cfg.StepTiming; }
  bool phaseTiming() const { return Cfg.PhaseTiming; }

private:
  Config Cfg;
  CounterRegistry Reg;
};

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_OBSERVER_H
