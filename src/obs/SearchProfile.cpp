//===- obs/SearchProfile.cpp ----------------------------------------------===//

#include "obs/SearchProfile.h"

using namespace fsmc;
using namespace fsmc::obs;

static size_t branchBucket(int Num) {
  size_t B = Num >= 2 ? size_t(Num) - 2 : 0;
  return B < ProfileBranchBuckets ? B : ProfileBranchBuckets - 1;
}

static size_t depthBucket(uint64_t D) {
  size_t B = 0;
  while (B + 1 < ProfileDepthBuckets && (uint64_t(1) << (B + 1)) <= D + 1)
    ++B;
  return B;
}

void SearchProfile::noteBranch(unsigned Kind, int Num, uint64_t D) {
  OpClassStats &S = Ops[Kind < OpKindSlots ? Kind : OpKindSlots - 1];
  ++S.BranchPoints;
  S.Alternatives += uint64_t(Num - 1);
  ++BranchFactor[branchBucket(Num)];
  ++Depth[depthBucket(D)];
}

void SearchProfile::noteObject(const std::string &Name, int Num) {
  if (Name.empty())
    return;
  OpClassStats &S = Objects[Name];
  ++S.BranchPoints;
  S.Alternatives += uint64_t(Num - 1);
}

void SearchProfile::noteChoose(int Num, uint64_t D) {
  ++Choose.BranchPoints;
  Choose.Alternatives += uint64_t(Num - 1);
  ++BranchFactor[branchBucket(Num)];
  ++Depth[depthBucket(D)];
}

void SearchProfile::notePorSleep(unsigned Kind, uint64_t N) {
  Ops[Kind < OpKindSlots ? Kind : OpKindSlots - 1].PorSleepHits += N;
}

uint64_t SearchProfile::totalBranchPoints() const {
  uint64_t Total = Choose.BranchPoints;
  for (const OpClassStats &S : Ops)
    Total += S.BranchPoints;
  return Total;
}

void SearchProfile::merge(const SearchProfile &O) {
  for (size_t I = 0; I < OpKindSlots; ++I)
    Ops[I].merge(O.Ops[I]);
  Choose.merge(O.Choose);
  for (const auto &[Name, S] : O.Objects)
    Objects[Name].merge(S);
  for (size_t I = 0; I < ProfileBranchBuckets; ++I)
    BranchFactor[I] += O.BranchFactor[I];
  for (size_t I = 0; I < ProfileDepthBuckets; ++I)
    Depth[I] += O.Depth[I];
}
