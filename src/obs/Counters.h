//===- obs/Counters.h - Per-worker-sharded search metrics ------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live counters for the search. The paper's whole evaluation is told
/// through search telemetry (executions, transitions, priority edges,
/// divergence classes); SearchStats reports those post hoc, while this
/// registry makes them observable *while the search runs* -- the substrate
/// for the progress reporter, the stats exporter, and any future perf work.
///
/// Layout: one cache-line-padded shard per OS worker (shard 0 is the
/// serial explorer / the parallel driver). Each shard has exactly one
/// writer -- the worker that owns it -- so increments are plain
/// load/add/store on relaxed atomics (no RMW, no contention); readers
/// (progress reporter, exporters) sum shards at their own pace and may
/// observe slightly stale values, which is fine for telemetry.
///
/// The disabled path costs nothing: code holds a WorkerCounters pointer
/// that is null when no Observer is attached, and every instrumentation
/// site is a single pointer test.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_COUNTERS_H
#define FSMC_OBS_COUNTERS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace fsmc {
namespace obs {

/// The counter catalogue. Monotonic totals; see counterName() for the
/// stable wire names used in --stats-json and the progress line.
enum class Counter : unsigned {
  Executions,              ///< Executions finished (any end kind).
  Transitions,             ///< Transitions executed.
  Preemptions,             ///< Preemptive context switches (Section 4).
  ReplaySteps,             ///< Transitions spent re-running recorded
                           ///< prefixes -- the stateless method's tax.
  SchedulePoints,          ///< Visible operations published by test code.
  SyncContention,          ///< Blocking ops that parked on a busy object.
  FairEdgeAdds,            ///< Priority edges added (Algorithm 1 line 25).
  FairEdgeRemovals,        ///< Priority edges removed (line 13).
  StatefulPrunes,          ///< Executions cut by the reference search.
  NonterminatingExecutions,///< Executions abandoned at a bound.
  BugsFound,               ///< Buggy executions (all verdict classes).
  Deadlocks,               ///< ... of which deadlocks.
  Livelocks,               ///< ... of which fair divergences.
  GoodSamaritanViolations, ///< ... of which good-samaritan violations.
  WorkItemsRun,            ///< Parallel: prefixes popped and explored.
  PrefixesDonated,         ///< Parallel: prefixes split off for others.
  // Sleep-set POR (docs/POR.md). Zero whenever --por is off, and omitted
  // from --stats-json then, so non-POR output stays byte-identical.
  PorSleepHits,            ///< Sleeping threads filtered from candidates.
  PorBranchesPruned,       ///< Executions cut by sleep-set POR.
  PorFairWakes,            ///< Sleepers woken as the only fair choices.
  // Robustness layer (docs/ROBUSTNESS.md). These report as zero on every
  // healthy run, so --stats-json omits zero values to keep legacy output
  // byte-identical.
  Divergences,             ///< Prefixes discarded after failed replays.
  DivergenceRetries,       ///< Re-executions of mismatching prefixes.
  Crashes,                 ///< Sandboxed executions that died on a signal.
  Hangs,                   ///< Sandboxed executions killed by the watchdog.
  Checkpoints,             ///< Checkpoints written.
  RacesChecked,            ///< Plain accesses race-checked (--races=on).
  RacesFound,              ///< Distinct data races found.
  // Fleet mode (docs/FLEET.md). Zero off-fleet and on healthy fleet runs;
  // omitted from --stats-json at zero like the rest of the robustness
  // block.
  FleetWorkerCrashes,      ///< Fleet worker processes that died.
  FleetReissues,           ///< Leased units re-issued after a death.
  FleetRespawns,           ///< Replacement workers forked.
  FleetQuarantined,        ///< Units quarantined as crash incidents.
  // Weak-memory exploration (docs/MEMORY.md). Zero under --memory=sc and
  // omitted from --stats-json then, so sc output stays byte-identical.
  BufferedStores,          ///< Stores enqueued into a thread store buffer.
  StoreFlushes,            ///< Buffered stores committed to memory.
  // Work-stealing parallel engine (docs/PERFORMANCE.md). Zero at --jobs=1
  // and omitted from --stats-json then, so serial output stays
  // byte-identical.
  Steals,                  ///< Successful steal-half grabs from a victim.
  StealFails,              ///< Steal attempts that found the victim empty.
  QueueLockAcquires,       ///< Shared-lock acquisitions (injector, bug,
                           ///< merge, stash) -- the contention budget.
  MergeNs,                 ///< Nanoseconds spent in deferred cross-worker
                           ///< merges (stats/states/races/profile).
  DonationBytes,           ///< Prefix bytes materialized by splitWork.
  NumCounters
};

/// Point-in-time values; unlike counters they can go down. Gauges have
/// multiple writers (any worker may update), so they use plain relaxed
/// stores of the new absolute value.
enum class Gauge : unsigned {
  WorkQueueDepth, ///< Items currently queued (parallel search).
  MaxDepth,       ///< Deepest execution seen so far (monotonic max).
  ActiveWorkers,  ///< Workers currently inside an execution.
  NumGauges
};

/// Wall-time phase buckets (Observer::Config::PhaseTiming): where an
/// execution's time actually goes. Replay is the stateless method's tax;
/// snapshot is the coverage-signature cost; race-check is the detector
/// harvest at execution end; execute is everything else inside the run
/// loop.
enum class Phase : unsigned {
  Replay,    ///< Re-running the recorded prefix.
  Execute,   ///< Fresh transitions past the prefix.
  RaceCheck, ///< Race-detector harvest at execution end.
  Snapshot,  ///< State-signature hashing and lookup.
  NumPhases
};

const char *counterName(Counter C);
const char *gaugeName(Gauge G);
const char *phaseName(Phase P);

/// Number of power-of-two buckets in the scheduling-point latency
/// histogram: bucket i counts steps whose latency was in [2^i, 2^(i+1))
/// nanoseconds.
constexpr size_t LatencyBuckets = 32;

/// Number of distinct PendingOp kinds tracked per shard (must cover
/// OpKind; checked by a static_assert in Counters.cpp).
constexpr size_t OpKindSlots = 32;

/// One worker's shard. Padded to its own cache lines so workers never
/// false-share.
struct alignas(64) WorkerCounters {
  std::atomic<uint64_t> C[size_t(Counter::NumCounters)] = {};
  std::atomic<uint64_t> G[size_t(Gauge::NumGauges)] = {};
  /// Scheduling points by visible-operation kind (indexed by OpKind).
  std::atomic<uint64_t> Ops[OpKindSlots] = {};
  /// Contended blocking operations by kind.
  std::atomic<uint64_t> Contended[OpKindSlots] = {};
  /// log2-bucketed per-transition latency (only filled when step timing
  /// is enabled; clock reads are not free).
  std::atomic<uint64_t> Latency[LatencyBuckets] = {};
  /// Nanoseconds per phase (only filled when phase timing is enabled).
  std::atomic<uint64_t> PhaseNs[size_t(Phase::NumPhases)] = {};
  /// Knuth weighted-backtrack mass accumulated on this shard, stored as
  /// the bit pattern of a double (atomic<double> is not lock-free
  /// everywhere). Single writer, so load-bitcast-add-store never loses
  /// mass; readers sum shards for the live tree-size estimate.
  std::atomic<uint64_t> EstMassBits{0};

  /// Single-writer increment: load+store, no RMW. The owning worker is
  /// the only writer, so this never loses updates.
  void add(Counter Id, uint64_t N = 1) {
    auto &A = C[size_t(Id)];
    A.store(A.load(std::memory_order_relaxed) + N, std::memory_order_relaxed);
  }
  void addOp(unsigned Kind, uint64_t N = 1) {
    auto &A = Ops[Kind < OpKindSlots ? Kind : OpKindSlots - 1];
    A.store(A.load(std::memory_order_relaxed) + N, std::memory_order_relaxed);
  }
  void addContended(unsigned Kind) {
    auto &A = Contended[Kind < OpKindSlots ? Kind : OpKindSlots - 1];
    A.store(A.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  void addLatencyNs(uint64_t Ns);
  void addPhaseNs(Phase P, uint64_t Ns) {
    auto &A = PhaseNs[size_t(P)];
    A.store(A.load(std::memory_order_relaxed) + Ns,
            std::memory_order_relaxed);
  }
  /// Single-writer add of estimator mass (see EstMassBits).
  void addEstimateMass(double M);
  void setGauge(Gauge Id, uint64_t V) {
    G[size_t(Id)].store(V, std::memory_order_relaxed);
  }
  /// Raises a monotonic-max gauge (e.g. MaxDepth); single writer per shard
  /// so load+store suffices.
  void maxGauge(Gauge Id, uint64_t V) {
    auto &A = G[size_t(Id)];
    if (V > A.load(std::memory_order_relaxed))
      A.store(V, std::memory_order_relaxed);
  }
};

/// An aggregated, coherent-enough copy of every shard, taken by readers.
struct CounterSnapshot {
  uint64_t C[size_t(Counter::NumCounters)] = {};
  uint64_t G[size_t(Gauge::NumGauges)] = {};
  uint64_t Ops[OpKindSlots] = {};
  uint64_t Contended[OpKindSlots] = {};
  uint64_t Latency[LatencyBuckets] = {};
  uint64_t PhaseNs[size_t(Phase::NumPhases)] = {};
  /// Summed estimator mass across shards (0 when --estimate is off).
  double EstimateMass = 0;

  uint64_t counter(Counter Id) const { return C[size_t(Id)]; }
  uint64_t gauge(Gauge Id) const { return G[size_t(Id)]; }
  uint64_t phaseNs(Phase P) const { return PhaseNs[size_t(P)]; }
};

/// The sharded registry. Sized at construction for the maximum worker
/// count; shard(i) hands worker i its private shard.
class CounterRegistry {
public:
  explicit CounterRegistry(size_t MaxWorkers);

  WorkerCounters &shard(unsigned Worker);
  size_t shardCount() const { return NumShards; }

  /// Sums every shard. Gauges: WorkQueueDepth and ActiveWorkers sum
  /// (each worker contributes its own view), MaxDepth takes the max.
  CounterSnapshot snapshot() const;

private:
  std::unique_ptr<WorkerCounters[]> Shards;
  size_t NumShards;
};

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_COUNTERS_H
