//===- obs/ProgressReporter.cpp -------------------------------------------===//

#include "obs/ProgressReporter.h"

#include "obs/Observer.h"
#include "support/OutStream.h"

#include <chrono>
#include <cmath>
#include <cstdio>

using namespace fsmc;
using namespace fsmc::obs;

namespace {

/// 1234567 -> "1.2M": keeps the one-line format one line.
std::string compactCount(uint64_t V) {
  char Buf[32];
  if (V >= 10'000'000'000ULL)
    std::snprintf(Buf, sizeof(Buf), "%.1fG", double(V) / 1e9);
  else if (V >= 10'000'000ULL)
    std::snprintf(Buf, sizeof(Buf), "%.1fM", double(V) / 1e6);
  else if (V >= 100'000ULL)
    std::snprintf(Buf, sizeof(Buf), "%.1fk", double(V) / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  return Buf;
}

} // namespace

ProgressReporter::ProgressReporter(const Observer &Obs, const Config &Cfg,
                                   OutStream &OS)
    : Obs(Obs), Cfg(Cfg), OS(OS), Start(std::chrono::steady_clock::now()) {
  if (this->Cfg.IntervalSeconds <= 0)
    this->Cfg.IntervalSeconds = 1.0;
  Th = std::thread([this] { run(); });
}

ProgressReporter::~ProgressReporter() { stop(); }

void ProgressReporter::stop() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Stopping && !Th.joinable())
      return;
    Stopping = true;
  }
  CV.notify_all();
  if (Th.joinable())
    Th.join();
}

std::string ProgressReporter::formatLine(double ElapsedSeconds,
                                         uint64_t Execs, uint64_t Trans,
                                         double ExecRate) const {
  CounterSnapshot S = Obs.snapshot();
  // Two rates: the delta rate of the last window (spiky, shows stalls)
  // and the cumulative average since the search began (what stats-json's
  // timing block reports as execs_per_sec); elapsed_ms gives tooling a
  // number to scrape without parsing "12.0s".
  double AvgRate = ElapsedSeconds > 0 ? double(Execs) / ElapsedSeconds : 0;
  char Head[192];
  std::snprintf(Head, sizeof(Head),
                "[fsmc %.1fs] elapsed_ms=%.0f exec=%s (%.0f/s, avg %.0f/s) "
                "trans=%s",
                ElapsedSeconds, ElapsedSeconds * 1000.0,
                compactCount(Execs).c_str(), ExecRate, AvgRate,
                compactCount(Trans).c_str());
  std::string Line = Head;
  Line += " depth=" + std::to_string(S.gauge(Gauge::MaxDepth));
  Line += " edges=" + compactCount(S.counter(Counter::FairEdgeAdds));
  // POR activity, shown only when the reduction is doing work so the
  // non-POR progress line keeps its historical shape.
  uint64_t PorHits = S.counter(Counter::PorSleepHits);
  uint64_t PorPruned = S.counter(Counter::PorBranchesPruned);
  if (PorHits || PorPruned) {
    Line += " por_hits=" + compactCount(PorHits);
    Line += " por_pruned=" + compactCount(PorPruned);
  }
  // Fleet recovery activity, shown only once the supervisor has actually
  // had to intervene (crash, re-issue, respawn or quarantine); healthy
  // fleet runs and non-fleet runs keep the historical line shape.
  uint64_t FleetCrashes = S.counter(Counter::FleetWorkerCrashes);
  uint64_t FleetReissues = S.counter(Counter::FleetReissues);
  uint64_t FleetRespawns = S.counter(Counter::FleetRespawns);
  uint64_t FleetQuarantined = S.counter(Counter::FleetQuarantined);
  if (FleetCrashes || FleetReissues || FleetRespawns || FleetQuarantined) {
    Line += " fleet_crashes=" + compactCount(FleetCrashes);
    Line += " fleet_reissues=" + compactCount(FleetReissues);
    if (FleetRespawns)
      Line += " fleet_respawns=" + compactCount(FleetRespawns);
    if (FleetQuarantined)
      Line += " fleet_quarantined=" + compactCount(FleetQuarantined);
  }
  if (Cfg.Jobs > 1) {
    Line += " queue=" + std::to_string(S.gauge(Gauge::WorkQueueDepth));
    Line += " workers=" + std::to_string(S.gauge(Gauge::ActiveWorkers)) +
            "/" + std::to_string(Cfg.Jobs);
  }
  // ETA against whichever budget binds first; execution-cap ETA needs a
  // rate to extrapolate with. When a budget or cap exists but there is no
  // usable rate yet (first tick, stalled search), or the arithmetic lands
  // on inf/nan (e.g. a denormal rate), print `eta=?` rather than `eta=inf`
  // -- scrapers key on the field being numeric-or-'?'.
  double Eta = -1;
  bool WantEta = Cfg.TimeBudgetSeconds > 0 || Cfg.MaxExecutions > 0;
  if (Cfg.TimeBudgetSeconds > 0)
    Eta = Cfg.TimeBudgetSeconds - ElapsedSeconds;
  if (Cfg.MaxExecutions > 0 && ExecRate > 0.1) {
    double CapEta = double(Cfg.MaxExecutions > Execs
                               ? Cfg.MaxExecutions - Execs
                               : 0) /
                    ExecRate;
    if (std::isfinite(CapEta) && (Eta < 0 || CapEta < Eta))
      Eta = CapEta;
  }
  if (Eta >= 0 && std::isfinite(Eta)) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), " eta=%.0fs", Eta > 0 ? Eta : 0.0);
    Line += Buf;
  } else if (WantEta) {
    Line += " eta=?";
  }
  // Online tree-size estimate: progress % is the explored mass, est the
  // projected total execution count, eta_est the remaining work at the
  // cumulative average rate. Early in a run the estimate is biased by
  // whichever subtrees DFS finished first (docs/OBSERVABILITY.md).
  if (Cfg.Estimate && S.EstimateMass > 0 && Execs > 0) {
    double Mass = S.EstimateMass < 1.0 ? S.EstimateMass : 1.0;
    double Est = double(Execs) / S.EstimateMass;
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), " progress=%.1f%% est=%s", Mass * 100.0,
                  compactCount(uint64_t(Est + 0.5)).c_str());
    Line += Buf;
    if (Est > double(Execs)) {
      // Same `?` discipline as eta= above: an estimate with no usable
      // average rate (or a non-finite quotient) must not print inf/nan.
      double EtaEst =
          AvgRate > 0.1 ? (Est - double(Execs)) / AvgRate : -1;
      if (EtaEst >= 0 && std::isfinite(EtaEst)) {
        std::snprintf(Buf, sizeof(Buf), " eta_est=%.0fs", EtaEst);
        Line += Buf;
      } else {
        Line += " eta_est=?";
      }
    }
  }
  Line += '\n';
  return Line;
}

void ProgressReporter::run() {
  uint64_t PrevExecs = 0;
  double PrevT = 0;
  std::unique_lock<std::mutex> Lock(M);
  while (!Stopping) {
    CV.wait_for(Lock, std::chrono::duration<double>(Cfg.IntervalSeconds),
                [this] { return Stopping; });
    if (Stopping)
      break;
    double T = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - Start)
                   .count();
    CounterSnapshot S = Obs.snapshot();
    uint64_t Execs = S.counter(Counter::Executions);
    double Rate = T > PrevT ? double(Execs - PrevExecs) / (T - PrevT) : 0;
    // Compose the whole line first: one write() call is atomic against
    // the main thread's summary output.
    std::string Line =
        formatLine(T, Execs, S.counter(Counter::Transitions), Rate);
    OS.write(Line.data(), Line.size());
    OS.flush();
    PrevExecs = Execs;
    PrevT = T;
  }
}
