//===- obs/StatsJson.cpp --------------------------------------------------===//

#include "obs/StatsJson.h"

#include "obs/Observer.h"
#include "runtime/PendingOp.h"
#include "support/OutStream.h"

#include <cinttypes>
#include <cstdio>

using namespace fsmc;
using namespace fsmc::obs;

void fsmc::obs::appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (uint8_t(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
}

const char *fsmc::obs::stopReason(const CheckResult &R) {
  // Robustness outcomes first: an interrupted run stopped for the signal
  // regardless of what it had found, and crash/hang/divergence verdicts
  // are incident classes, not workload bugs (docs/ROBUSTNESS.md).
  if (R.Stats.Interrupted)
    return "interrupted";
  if (R.Kind == Verdict::Divergence)
    return "divergence";
  if (R.Kind == Verdict::Crash)
    return "workload_crash";
  if (R.Kind == Verdict::Hang)
    return "workload_hang";
  if (R.Kind == Verdict::DataRace)
    return "data_race";
  if (R.foundBug())
    return "bug_found";
  if (R.Stats.TimedOut)
    return "time_budget_exhausted";
  if (R.Stats.ExecutionCapHit)
    return "execution_cap_hit";
  if (R.Stats.SearchExhausted)
    return "search_exhausted";
  return "stopped";
}

std::string fsmc::obs::budgetNote(const CheckResult &R,
                                  const CheckerOptions &Opts) {
  char Buf[128];
  if (R.Stats.TimedOut) {
    std::snprintf(Buf, sizeof(Buf),
                  "time budget exhausted (%.1fs); verdict covers the "
                  "executions explored, not the full tree",
                  Opts.TimeBudgetSeconds);
    return Buf;
  }
  if (R.Stats.ExecutionCapHit) {
    std::snprintf(Buf, sizeof(Buf),
                  "execution cap hit (%" PRIu64 "); verdict covers the "
                  "executions explored, not the full tree",
                  Opts.MaxExecutions);
    return Buf;
  }
  return "";
}

namespace {

const char *searchKindName(SearchKind K) {
  switch (K) {
  case SearchKind::Dfs:
    return "dfs";
  case SearchKind::ContextBounded:
    return "context_bounded";
  case SearchKind::RandomWalk:
    return "random_walk";
  }
  return "?";
}

void appendKV(std::string &Out, const char *Key, uint64_t V, bool Comma,
              int Indent = 4) {
  Out.append(size_t(Indent), ' ');
  Out += '"';
  Out += Key;
  Out += "\": ";
  Out += std::to_string(V);
  if (Comma)
    Out += ',';
  Out += '\n';
}

void appendKVBool(std::string &Out, const char *Key, bool V, bool Comma) {
  Out += "    \"";
  Out += Key;
  Out += "\": ";
  Out += V ? "true" : "false";
  if (Comma)
    Out += ',';
  Out += '\n';
}

void appendKVStr(std::string &Out, const char *Key, std::string_view V,
                 bool Comma, int Indent = 4) {
  Out.append(size_t(Indent), ' ');
  Out += '"';
  Out += Key;
  Out += "\": \"";
  appendJsonEscaped(Out, V);
  Out += '"';
  if (Comma)
    Out += ',';
  Out += '\n';
}

} // namespace

std::string fsmc::obs::renderStatsJson(const CheckResult &R,
                                       const StatsJsonInfo &Info) {
  const SearchStats &S = R.Stats;
  std::string Out;
  Out.reserve(2048);
  Out += "{\n";
  Out += "  \"schema\": 1,\n";
  appendKVStr(Out, "program", Info.Program, true, 2);
  appendKVStr(Out, "verdict", verdictName(R.Kind), true, 2);
  appendKVStr(Out, "stop_reason", stopReason(R), true, 2);
  Out += "  \"replay\": ";
  Out += Info.Replay ? "true" : "false";
  Out += ",\n";

  if (Info.Options) {
    const CheckerOptions &O = *Info.Options;
    Out += "  \"options\": {\n";
    appendKVStr(Out, "kind", searchKindName(O.Kind), true);
    appendKVBool(Out, "fair", O.Fair, true);
    appendKV(Out, "yield_k", uint64_t(O.YieldK), true);
    appendKV(Out, "context_bound", uint64_t(O.ContextBound), true);
    appendKV(Out, "depth_bound", O.DepthBound, true);
    appendKV(Out, "execution_bound", O.ExecutionBound, true);
    appendKV(Out, "max_executions", O.MaxExecutions, true);
    Out += "    \"time_budget_seconds\": " +
           std::to_string(O.TimeBudgetSeconds) + ",\n";
    appendKV(Out, "seed", O.Seed, true);
    appendKV(Out, "jobs", uint64_t(O.Jobs), true);
    appendKVBool(Out, "por", O.Por, true);
    // Robustness options appear only when set away from their defaults,
    // so pre-existing outputs stay byte-identical.
    if (O.Isolate != IsolationMode::Off) {
      appendKVStr(Out, "isolate", "batch", true);
      appendKV(Out, "sandbox_batch_size", uint64_t(O.SandboxBatchSize), true);
    }
    if (O.DivergenceRetries != 3)
      appendKV(Out, "divergence_retries", uint64_t(O.DivergenceRetries), true);
    if (O.Races != RaceCheckMode::Off)
      appendKVStr(Out, "races", O.Races == RaceCheckMode::Fatal ? "fatal" : "on",
                  true);
    if (O.CheckpointEvery != 0)
      appendKV(Out, "checkpoint_every", O.CheckpointEvery, true);
    appendKVBool(Out, "stop_on_first_bug", O.StopOnFirstBug, false);
    Out += "  },\n";
  }

  Out += "  \"stats\": {\n";
  appendKV(Out, "executions", S.Executions, true);
  appendKV(Out, "transitions", S.Transitions, true);
  appendKV(Out, "preemptions", S.Preemptions, true);
  appendKV(Out, "nonterminating_executions", S.NonterminatingExecutions,
           true);
  appendKV(Out, "pruned_executions", S.PrunedExecutions, true);
  // POR stats appear only when the reduction did something, mirroring the
  // robustness stats below: a --por=off report keeps its legacy shape.
  if (S.PorSleepHits != 0)
    appendKV(Out, "por_sleep_hits", S.PorSleepHits, true);
  if (S.PorBranchesPruned != 0)
    appendKV(Out, "por_branches_pruned", S.PorBranchesPruned, true);
  if (S.PorFairWakes != 0)
    appendKV(Out, "por_fair_wakes", S.PorFairWakes, true);
  appendKV(Out, "max_depth", S.MaxDepth, true);
  appendKV(Out, "distinct_states", S.DistinctStates, true);
  appendKV(Out, "fair_edge_additions", S.FairEdgeAdditions, true);
  appendKV(Out, "bugs_found", S.BugsFound, true);
  appendKV(Out, "max_threads", uint64_t(S.MaxThreads), true);
  appendKV(Out, "max_sync_ops", S.MaxSyncOps, true);
  // Robustness stats are zero/false on every healthy run and omitted then,
  // keeping legacy stats-json output byte-identical.
  if (S.Divergences != 0)
    appendKV(Out, "divergences", S.Divergences, true);
  if (S.DivergenceRetries != 0)
    appendKV(Out, "divergence_retries", S.DivergenceRetries, true);
  if (S.Crashes != 0)
    appendKV(Out, "crashes", S.Crashes, true);
  if (S.Hangs != 0)
    appendKV(Out, "hangs", S.Hangs, true);
  if (S.Checkpoints != 0)
    appendKV(Out, "checkpoints", S.Checkpoints, true);
  if (S.RacesChecked != 0)
    appendKV(Out, "races_checked", S.RacesChecked, true);
  if (S.RacesFound != 0)
    appendKV(Out, "races_found", S.RacesFound, true);
  if (S.Interrupted)
    appendKVBool(Out, "interrupted", true, true);
  char Secs[48];
  std::snprintf(Secs, sizeof(Secs), "    \"seconds\": %.6f,\n", S.Seconds);
  Out += Secs;
  appendKVBool(Out, "timed_out", S.TimedOut, true);
  appendKVBool(Out, "execution_cap_hit", S.ExecutionCapHit, true);
  appendKVBool(Out, "search_exhausted", S.SearchExhausted, false);
  Out += "  },\n";

  if (Info.Timing) {
    char Buf[160];
    double Rate = S.Seconds > 0 ? double(S.Executions) / S.Seconds : 0;
    std::snprintf(Buf, sizeof(Buf),
                  "  \"timing\": {\n    \"elapsed_ms\": %.3f,\n"
                  "    \"execs_per_sec\": %.1f\n  },\n",
                  S.Seconds * 1000.0, Rate);
    Out += Buf;
  }

  if (Info.Obs) {
    CounterSnapshot C = Info.Obs->snapshot();
    Out += "  \"counters\": {\n";
    for (unsigned I = 0; I < unsigned(Counter::NumCounters); ++I) {
      // POR and robustness counters (PorSleepHits onward) are omitted at
      // zero; see Counters.h.
      if (I >= unsigned(Counter::PorSleepHits) && C.C[I] == 0)
        continue;
      appendKV(Out, counterName(Counter(I)), C.C[I], true);
    }
    for (unsigned I = 0; I < unsigned(Gauge::NumGauges); ++I)
      appendKV(Out, gaugeName(Gauge(I)), C.G[I],
               /*Comma=*/I + 1 < unsigned(Gauge::NumGauges));
    Out += "  },\n";

    // Per-op-kind scheduling points and contention, non-zero rows only.
    Out += "  \"ops\": {\n";
    std::string Rows;
    for (unsigned I = 0; I < OpKindSlots; ++I) {
      if (C.Ops[I] == 0 && C.Contended[I] == 0)
        continue;
      if (!Rows.empty())
        Rows += ",\n";
      Rows += "    \"";
      Rows += opKindName(OpKind(I));
      Rows += "\": { \"count\": " + std::to_string(C.Ops[I]) +
              ", \"contended\": " + std::to_string(C.Contended[I]) + " }";
    }
    Out += Rows;
    Out += "\n  },\n";

    // log2 step-latency histogram, present only when step timing ran.
    std::string Hist;
    for (unsigned I = 0; I < LatencyBuckets; ++I) {
      if (C.Latency[I] == 0)
        continue;
      if (!Hist.empty())
        Hist += ",\n";
      Hist += "    \"" + std::to_string(uint64_t(1) << I) +
              "\": " + std::to_string(C.Latency[I]);
    }
    if (!Hist.empty()) {
      Out += "  \"step_latency_ns\": {\n";
      Out += Hist;
      Out += "\n  },\n";
    }
  }

  if (R.Bug) {
    Out += "  \"bug\": {\n";
    appendKVStr(Out, "kind", verdictName(R.Bug->Kind), true);
    appendKVStr(Out, "message", R.Bug->Message, true);
    appendKVStr(Out, "schedule", R.Bug->Schedule, true);
    appendKV(Out, "at_execution", R.Bug->AtExecution, true);
    appendKV(Out, "at_step", R.Bug->AtStep, false);
    Out += "  }\n";
  } else {
    Out += "  \"bug\": null\n";
  }
  Out += "}\n";
  return Out;
}

void fsmc::obs::writeStatsJson(OutStream &OS, const CheckResult &R,
                               const StatsJsonInfo &Info) {
  std::string Text = renderStatsJson(R, Info);
  OS.write(Text.data(), Text.size());
  OS.flush();
}
