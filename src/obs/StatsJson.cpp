//===- obs/StatsJson.cpp --------------------------------------------------===//

#include "obs/StatsJson.h"

#include "obs/Observer.h"
#include "obs/SearchProfile.h"
#include "runtime/PendingOp.h"
#include "support/OutStream.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

using namespace fsmc;
using namespace fsmc::obs;

void fsmc::obs::appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (uint8_t(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        Out += Buf;
      } else {
        Out += Ch;
      }
    }
  }
}

const char *fsmc::obs::stopReason(const CheckResult &R) {
  // Robustness outcomes first: an interrupted run stopped for the signal
  // regardless of what it had found, and crash/hang/divergence verdicts
  // are incident classes, not workload bugs (docs/ROBUSTNESS.md).
  if (R.Stats.Interrupted)
    return "interrupted";
  if (R.Kind == Verdict::Divergence)
    return "divergence";
  if (R.Kind == Verdict::Crash)
    return "workload_crash";
  if (R.Kind == Verdict::Hang)
    return "workload_hang";
  if (R.Kind == Verdict::DataRace)
    return "data_race";
  if (R.foundBug())
    return "bug_found";
  if (R.Stats.TimedOut)
    return "time_budget_exhausted";
  if (R.Stats.ExecutionCapHit)
    return "execution_cap_hit";
  if (R.Stats.SearchExhausted)
    return "search_exhausted";
  return "stopped";
}

std::string fsmc::obs::budgetNote(const CheckResult &R,
                                  const CheckerOptions &Opts) {
  char Buf[128];
  if (R.Stats.TimedOut) {
    std::snprintf(Buf, sizeof(Buf),
                  "time budget exhausted (%.1fs); verdict covers the "
                  "executions explored, not the full tree",
                  Opts.TimeBudgetSeconds);
    return Buf;
  }
  if (R.Stats.ExecutionCapHit) {
    std::snprintf(Buf, sizeof(Buf),
                  "execution cap hit (%" PRIu64 "); verdict covers the "
                  "executions explored, not the full tree",
                  Opts.MaxExecutions);
    return Buf;
  }
  return "";
}

namespace {

const char *searchKindName(SearchKind K) {
  switch (K) {
  case SearchKind::Dfs:
    return "dfs";
  case SearchKind::ContextBounded:
    return "context_bounded";
  case SearchKind::RandomWalk:
    return "random_walk";
  }
  return "?";
}

void appendKV(std::string &Out, const char *Key, uint64_t V, bool Comma,
              int Indent = 4) {
  Out.append(size_t(Indent), ' ');
  Out += '"';
  Out += Key;
  Out += "\": ";
  Out += std::to_string(V);
  if (Comma)
    Out += ',';
  Out += '\n';
}

void appendKVBool(std::string &Out, const char *Key, bool V, bool Comma) {
  Out += "    \"";
  Out += Key;
  Out += "\": ";
  Out += V ? "true" : "false";
  if (Comma)
    Out += ',';
  Out += '\n';
}

void appendKVStr(std::string &Out, const char *Key, std::string_view V,
                 bool Comma, int Indent = 4) {
  Out.append(size_t(Indent), ' ');
  Out += '"';
  Out += Key;
  Out += "\": \"";
  appendJsonEscaped(Out, V);
  Out += '"';
  if (Comma)
    Out += ',';
  Out += '\n';
}

/// One profile class row: { "branch_points": n, "alternatives": n[,
/// "por_sleep_hits": n] }, appended without a trailing comma.
void appendProfileClass(std::string &Out, std::string_view Key,
                        const SearchProfile::OpClassStats &C) {
  Out += "      \"";
  appendJsonEscaped(Out, Key);
  Out += "\": { \"branch_points\": " + std::to_string(C.BranchPoints) +
         ", \"alternatives\": " + std::to_string(C.Alternatives);
  if (C.PorSleepHits)
    Out += ", \"por_sleep_hits\": " + std::to_string(C.PorSleepHits);
  Out += " }";
}

/// The "profile" section (--profile-search): per-op-class and per-object
/// branch-point attribution plus branch-factor and depth histograms,
/// non-zero rows only.
void appendProfile(std::string &Out, const SearchProfile &P) {
  Out += "  \"profile\": {\n";
  appendKV(Out, "branch_points", P.totalBranchPoints(), true);

  std::string Rows;
  for (unsigned I = 0; I < OpKindSlots; ++I) {
    if (P.Ops[I].empty())
      continue;
    if (!Rows.empty())
      Rows += ",\n";
    appendProfileClass(Rows, opKindName(OpKind(I)), P.Ops[I]);
  }
  if (!P.Choose.empty()) {
    if (!Rows.empty())
      Rows += ",\n";
    appendProfileClass(Rows, "choose", P.Choose);
  }
  Out += "    \"ops\": {\n" + Rows + "\n    },\n";

  Rows.clear();
  for (const auto &[Name, C] : P.Objects) {
    if (!Rows.empty())
      Rows += ",\n";
    appendProfileClass(Rows, Name, C);
  }
  if (!Rows.empty())
    Out += "    \"objects\": {\n" + Rows + "\n    },\n";

  Rows.clear();
  for (unsigned I = 0; I < ProfileBranchBuckets; ++I) {
    if (!P.BranchFactor[I])
      continue;
    if (!Rows.empty())
      Rows += ",\n";
    Rows += "      \"" +
            (I + 1 == ProfileBranchBuckets ? ">=" + std::to_string(I + 2)
                                           : std::to_string(I + 2)) +
            "\": " + std::to_string(P.BranchFactor[I]);
  }
  Out += "    \"branch_factor_hist\": {\n" + Rows + "\n    },\n";

  Rows.clear();
  for (unsigned I = 0; I < ProfileDepthBuckets; ++I) {
    if (!P.Depth[I])
      continue;
    if (!Rows.empty())
      Rows += ",\n";
    uint64_t Lo = (uint64_t(1) << I) - 1;
    Rows += "      \"" + std::to_string(Lo) +
            "\": " + std::to_string(P.Depth[I]);
  }
  Out += "    \"depth_hist\": {\n" + Rows + "\n    }\n  },\n";
}

} // namespace

std::string fsmc::obs::renderStatsJson(const CheckResult &R,
                                       const StatsJsonInfo &Info) {
  const SearchStats &S = R.Stats;
  std::string Out;
  Out.reserve(2048);
  Out += "{\n";
  Out += "  \"schema\": 1,\n";
  appendKVStr(Out, "program", Info.Program, true, 2);
  appendKVStr(Out, "verdict", verdictName(R.Kind), true, 2);
  appendKVStr(Out, "stop_reason", stopReason(R), true, 2);
  Out += "  \"replay\": ";
  Out += Info.Replay ? "true" : "false";
  Out += ",\n";

  if (Info.Options) {
    const CheckerOptions &O = *Info.Options;
    Out += "  \"options\": {\n";
    appendKVStr(Out, "kind", searchKindName(O.Kind), true);
    appendKVBool(Out, "fair", O.Fair, true);
    appendKV(Out, "yield_k", uint64_t(O.YieldK), true);
    appendKV(Out, "context_bound", uint64_t(O.ContextBound), true);
    appendKV(Out, "depth_bound", O.DepthBound, true);
    appendKV(Out, "execution_bound", O.ExecutionBound, true);
    appendKV(Out, "max_executions", O.MaxExecutions, true);
    Out += "    \"time_budget_seconds\": " +
           std::to_string(O.TimeBudgetSeconds) + ",\n";
    appendKV(Out, "seed", O.Seed, true);
    appendKV(Out, "jobs", uint64_t(O.Jobs), true);
    appendKVBool(Out, "por", O.Por, true);
    // Robustness options appear only when set away from their defaults,
    // so pre-existing outputs stay byte-identical.
    if (O.Memory != MemoryModel::Sc)
      appendKVStr(Out, "memory", memoryModelName(O.Memory), true);
    if (O.Isolate != IsolationMode::Off) {
      appendKVStr(Out, "isolate", "batch", true);
      appendKV(Out, "sandbox_batch_size", uint64_t(O.SandboxBatchSize), true);
    }
    if (O.DivergenceRetries != 3)
      appendKV(Out, "divergence_retries", uint64_t(O.DivergenceRetries), true);
    if (O.Races != RaceCheckMode::Off)
      appendKVStr(Out, "races", O.Races == RaceCheckMode::Fatal ? "fatal" : "on",
                  true);
    if (O.CheckpointEvery != 0)
      appendKV(Out, "checkpoint_every", O.CheckpointEvery, true);
    if (O.FleetWorkers > 0) {
      appendKV(Out, "fleet_workers", uint64_t(O.FleetWorkers), true);
      appendKV(Out, "fleet_batch", uint64_t(O.FleetBatchSize), true);
      appendKV(Out, "fleet_quarantine", uint64_t(O.FleetQuarantine), true);
    }
    appendKVBool(Out, "stop_on_first_bug", O.StopOnFirstBug, false);
    Out += "  },\n";
  }

  Out += "  \"stats\": {\n";
  appendKV(Out, "executions", S.Executions, true);
  appendKV(Out, "transitions", S.Transitions, true);
  appendKV(Out, "preemptions", S.Preemptions, true);
  appendKV(Out, "nonterminating_executions", S.NonterminatingExecutions,
           true);
  appendKV(Out, "pruned_executions", S.PrunedExecutions, true);
  // POR stats appear only when the reduction did something, mirroring the
  // robustness stats below: a --por=off report keeps its legacy shape.
  if (S.PorSleepHits != 0)
    appendKV(Out, "por_sleep_hits", S.PorSleepHits, true);
  if (S.PorBranchesPruned != 0)
    appendKV(Out, "por_branches_pruned", S.PorBranchesPruned, true);
  if (S.PorFairWakes != 0)
    appendKV(Out, "por_fair_wakes", S.PorFairWakes, true);
  appendKV(Out, "max_depth", S.MaxDepth, true);
  appendKV(Out, "distinct_states", S.DistinctStates, true);
  appendKV(Out, "fair_edge_additions", S.FairEdgeAdditions, true);
  appendKV(Out, "bugs_found", S.BugsFound, true);
  appendKV(Out, "max_threads", uint64_t(S.MaxThreads), true);
  appendKV(Out, "max_sync_ops", S.MaxSyncOps, true);
  // Robustness stats are zero/false on every healthy run and omitted then,
  // keeping legacy stats-json output byte-identical.
  if (S.Divergences != 0)
    appendKV(Out, "divergences", S.Divergences, true);
  if (S.DivergenceRetries != 0)
    appendKV(Out, "divergence_retries", S.DivergenceRetries, true);
  if (S.Crashes != 0)
    appendKV(Out, "crashes", S.Crashes, true);
  if (S.Hangs != 0)
    appendKV(Out, "hangs", S.Hangs, true);
  if (S.Checkpoints != 0)
    appendKV(Out, "checkpoints", S.Checkpoints, true);
  if (S.RacesChecked != 0)
    appendKV(Out, "races_checked", S.RacesChecked, true);
  if (S.RacesFound != 0)
    appendKV(Out, "races_found", S.RacesFound, true);
  // Fleet recovery counters, zero (and omitted) on healthy fleet runs and
  // on every non-fleet run.
  if (S.FleetWorkerCrashes != 0)
    appendKV(Out, "fleet_worker_crashes", S.FleetWorkerCrashes, true);
  if (S.FleetReissues != 0)
    appendKV(Out, "fleet_reissues", S.FleetReissues, true);
  if (S.FleetRespawns != 0)
    appendKV(Out, "fleet_respawns", S.FleetRespawns, true);
  if (S.FleetQuarantined != 0)
    appendKV(Out, "fleet_quarantined", S.FleetQuarantined, true);
  // Weak-memory stats, nonzero only under --memory=tso|pso (flushes and
  // buffered stores do not exist under sc), so sc output keeps its bytes.
  if (S.BufferedStores != 0)
    appendKV(Out, "buffered_stores", S.BufferedStores, true);
  if (S.StoreFlushes != 0)
    appendKV(Out, "store_flushes", S.StoreFlushes, true);
  if (S.Interrupted)
    appendKVBool(Out, "interrupted", true, true);
  char Secs[48];
  std::snprintf(Secs, sizeof(Secs), "    \"seconds\": %.6f,\n", S.Seconds);
  Out += Secs;
  appendKVBool(Out, "timed_out", S.TimedOut, true);
  appendKVBool(Out, "execution_cap_hit", S.ExecutionCapHit, true);
  appendKVBool(Out, "search_exhausted", S.SearchExhausted, false);
  Out += "  },\n";

  // The sections below are each gated on their own opt-in flag (or on the
  // data existing at all), so default reports keep their legacy bytes.
  if (Info.Options && Info.Options->Estimate) {
    uint64_t Est = 0;
    double Pct = 0;
    if (S.EstimateMass > 0 && S.Executions) {
      Est = uint64_t(std::llround(double(S.Executions) / S.EstimateMass));
      // Parallel merge order can push the float sum a hair past 1.0.
      double Mass = S.EstimateMass < 1.0 ? S.EstimateMass : 1.0;
      Pct = 100.0 * Mass;
    }
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "  \"estimate\": {\n    \"explored_mass\": %.9g,\n"
                  "    \"estimated_total_executions\": %" PRIu64 ",\n"
                  "    \"progress_pct\": %.3f\n  },\n",
                  S.EstimateMass, Est, Pct);
    Out += Buf;
  }

  if (Info.Options && Info.Options->TrackCoverage) {
    uint64_t Lookups = S.DistinctStates + S.StateHits;
    double HitRate = Lookups ? double(S.StateHits) / double(Lookups) : 0;
    Out += "  \"coverage\": {\n";
    appendKV(Out, "distinct_states", S.DistinctStates, true);
    appendKV(Out, "state_hits", S.StateHits, true);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "    \"hit_rate\": %.4f\n", HitRate);
    Out += Buf;
    Out += "  },\n";
  }

  if (R.Profile)
    appendProfile(Out, *R.Profile);

  if (Info.Timing) {
    char Buf[160];
    double Rate = S.Seconds > 0 ? double(S.Executions) / S.Seconds : 0;
    std::snprintf(Buf, sizeof(Buf),
                  "  \"timing\": {\n    \"elapsed_ms\": %.3f,\n"
                  "    \"execs_per_sec\": %.1f",
                  S.Seconds * 1000.0, Rate);
    Out += Buf;
    // Phase split, present only when phase timing actually ran (the
    // counters stay zero otherwise), so plain --timing keeps its bytes.
    if (Info.Obs) {
      CounterSnapshot C = Info.Obs->snapshot();
      uint64_t Total = 0;
      for (unsigned I = 0; I < unsigned(Phase::NumPhases); ++I)
        Total += C.PhaseNs[I];
      if (Total) {
        Out += ",\n    \"phases_ms\": {\n";
        for (unsigned I = 0; I < unsigned(Phase::NumPhases); ++I) {
          std::snprintf(Buf, sizeof(Buf), "      \"%s\": %.3f%s\n",
                        phaseName(Phase(I)), double(C.PhaseNs[I]) / 1e6,
                        I + 1 < unsigned(Phase::NumPhases) ? "," : "");
          Out += Buf;
        }
        Out += "    }";
      }
    }
    Out += "\n  },\n";
  }

  if (Info.Obs) {
    CounterSnapshot C = Info.Obs->snapshot();
    Out += "  \"counters\": {\n";
    for (unsigned I = 0; I < unsigned(Counter::NumCounters); ++I) {
      // POR and robustness counters (PorSleepHits onward) are omitted at
      // zero; see Counters.h.
      if (I >= unsigned(Counter::PorSleepHits) && C.C[I] == 0)
        continue;
      appendKV(Out, counterName(Counter(I)), C.C[I], true);
    }
    for (unsigned I = 0; I < unsigned(Gauge::NumGauges); ++I)
      appendKV(Out, gaugeName(Gauge(I)), C.G[I],
               /*Comma=*/I + 1 < unsigned(Gauge::NumGauges));
    Out += "  },\n";

    // Per-op-kind scheduling points and contention, non-zero rows only.
    Out += "  \"ops\": {\n";
    std::string Rows;
    for (unsigned I = 0; I < OpKindSlots; ++I) {
      if (C.Ops[I] == 0 && C.Contended[I] == 0)
        continue;
      if (!Rows.empty())
        Rows += ",\n";
      Rows += "    \"";
      Rows += opKindName(OpKind(I));
      Rows += "\": { \"count\": " + std::to_string(C.Ops[I]) +
              ", \"contended\": " + std::to_string(C.Contended[I]) + " }";
    }
    Out += Rows;
    Out += "\n  },\n";

    // log2 step-latency histogram, present only when step timing ran.
    std::string Hist;
    for (unsigned I = 0; I < LatencyBuckets; ++I) {
      if (C.Latency[I] == 0)
        continue;
      if (!Hist.empty())
        Hist += ",\n";
      Hist += "    \"" + std::to_string(uint64_t(1) << I) +
              "\": " + std::to_string(C.Latency[I]);
    }
    if (!Hist.empty()) {
      Out += "  \"step_latency_ns\": {\n";
      Out += Hist;
      Out += "\n  },\n";
    }
  }

  if (R.Bug) {
    Out += "  \"bug\": {\n";
    appendKVStr(Out, "kind", verdictName(R.Bug->Kind), true);
    appendKVStr(Out, "message", R.Bug->Message, true);
    appendKVStr(Out, "schedule", R.Bug->Schedule, true);
    appendKV(Out, "at_execution", R.Bug->AtExecution, true);
    appendKV(Out, "at_step", R.Bug->AtStep, false);
    Out += "  }\n";
  } else {
    Out += "  \"bug\": null\n";
  }
  Out += "}\n";
  return Out;
}

void fsmc::obs::writeStatsJson(OutStream &OS, const CheckResult &R,
                               const StatsJsonInfo &Info) {
  std::string Text = renderStatsJson(R, Info);
  OS.write(Text.data(), Text.size());
  OS.flush();
}
