//===- obs/Explain.h - Incident explainer ----------------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a recorded schedule as a human-readable thread-by-step
/// interleaving timeline, so a deadlock or race incident is diagnosable
/// without reading the fsmc1 wire format: one row per executed
/// transition (thread, visible operation, object, enabled set, POR sleep
/// set, branch factor), the failing step flagged, and -- for deadlocks --
/// the wait cycle spelled out from each blocked thread's pending
/// operation.
///
/// The Explorer fills an ExplainLog when one is attached via
/// setExplainLog (strings are resolved while the Runtime is alive, since
/// a stateless checker discards all program state between executions);
/// `fsmc_run --explain` drives a single frozen replay with the log
/// attached and prints renderExplainTimeline.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_EXPLAIN_H
#define FSMC_OBS_EXPLAIN_H

#include "core/Checker.h"
#include "runtime/PendingOp.h"

#include <string>
#include <vector>

namespace fsmc {
namespace obs {

/// One executed transition, with every id resolved to its name.
struct ExplainStep {
  int Thread = -1;
  std::string ThreadName;
  OpKind Op = OpKind::ThreadStart;
  std::string Object;      ///< Modeled object name; empty if none.
  uint64_t Annotation = 0; ///< User annotation value at the step.
  bool WasYield = false;
  uint64_t EnabledMask = 0; ///< Enabled set before the step.
  uint64_t SleepMask = 0;   ///< POR sleep set at the choice point.
  int Choices = 1;          ///< Scheduling candidates (1 = forced move).
  int ChosenIdx = 0;        ///< Index picked among the candidates.
};

/// A thread left blocked when the execution deadlocked.
struct ExplainBlocked {
  int Thread = -1;
  std::string ThreadName;
  OpKind Op = OpKind::ThreadStart;
  std::string Object;
};

/// Everything the Explorer recorded for one replayed execution.
struct ExplainLog {
  std::vector<ExplainStep> Steps;
  /// Stable end-class wire name: terminated / bug / abandoned / pruned /
  /// diverged.
  std::string EndDetail;
  std::vector<ExplainBlocked> Blocked;
};

/// Renders the timeline. \p R supplies the verdict, the bug report (for
/// the failing-step flag and message) and race incidents (whose messages
/// name the racing accesses).
std::string renderExplainTimeline(const ExplainLog &Log,
                                  const CheckResult &R,
                                  const std::string &ProgramName);

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_EXPLAIN_H
