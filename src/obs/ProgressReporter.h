//===- obs/ProgressReporter.h - Live search status lines -------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A background thread that snapshots the Observer's counters on a fixed
/// interval and prints a one-line status to stderr, so a multi-hour
/// search is not a black box until it returns:
///
///   [fsmc 12.0s] elapsed_ms=12000 exec=48210 (4012/s, avg 3900/s)
///       trans=1.2M depth=37 edges=880 queue=3 workers=4 eta=88s
///
/// The parenthesized rate pair is the last window's delta rate followed
/// by the cumulative average (executions / elapsed -- the same
/// execs_per_sec the stats-json timing block reports); the ETA is
/// against whichever budget (time or executions) binds first. Each line
/// is composed fully before a single atomic write, so progress never
/// shears with a bug report being printed on stdout (see OutStream).
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_PROGRESSREPORTER_H
#define FSMC_OBS_PROGRESSREPORTER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace fsmc {

class OutStream;

namespace obs {

class Observer;

class ProgressReporter {
public:
  struct Config {
    double IntervalSeconds = 1.0;
    /// Budgets, if known, for the ETA field; 0 = unbounded.
    double TimeBudgetSeconds = 0;
    uint64_t MaxExecutions = 0;
    /// Number of search workers, shown as `workers=N`; 0 hides the field.
    int Jobs = 0;
    /// Tree-size estimation is on (CheckerOptions::Estimate): append
    /// `progress=…% est=… eta_est=…` from the live weighted-backtrack
    /// mass. Off keeps the historical line shape.
    bool Estimate = false;
  };

  /// Starts the reporter thread immediately; prints to \p OS.
  ProgressReporter(const Observer &Obs, const Config &Cfg, OutStream &OS);
  /// Stops and joins the thread; no further output after this returns.
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter &) = delete;
  ProgressReporter &operator=(const ProgressReporter &) = delete;

  /// Stops early (idempotent). The final status line is printed by the
  /// caller's summary, not here, so stop() prints nothing.
  void stop();

private:
  void run();
  std::string formatLine(double ElapsedSeconds, uint64_t Execs,
                         uint64_t Trans, double ExecRate) const;

  const Observer &Obs;
  Config Cfg;
  OutStream &OS;
  /// Captured at construction, i.e. when the search starts -- not when the
  /// reporter thread first gets scheduled. Seeding the first window from
  /// thread startup undercounted its elapsed time and overstated (or, with
  /// a slow spawn, zeroed) the first printed rate.
  std::chrono::steady_clock::time_point Start;
  std::mutex M;
  std::condition_variable CV;
  bool Stopping = false;
  std::thread Th;
};

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_PROGRESSREPORTER_H
