//===- obs/HtmlReport.h - Self-contained HTML search report ----*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders one check run -- verdict, search stats, the tree-size
/// estimate, and the schedule-point profile -- as a single
/// self-contained HTML page (inline CSS only, no scripts, no external
/// fetches), so a hotspot report can be attached to a CI artifact or
/// mailed around as one file. Produced by `fsmc_run --report=<out>`,
/// which implies --profile-search.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_HTMLREPORT_H
#define FSMC_OBS_HTMLREPORT_H

#include <string>

namespace fsmc {
struct CheckResult;
struct CheckerOptions;

namespace obs {

/// Renders the full report page. Sections without data (no profile, no
/// estimate) are omitted rather than rendered empty.
std::string renderHtmlReport(const CheckResult &R, const CheckerOptions &Opts,
                             const std::string &ProgramName);

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_HTMLREPORT_H
