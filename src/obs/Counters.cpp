//===- obs/Counters.cpp ---------------------------------------------------===//

#include "obs/Counters.h"

#include "runtime/PendingOp.h"

#include <cstring>

using namespace fsmc;
using namespace fsmc::obs;

static_assert(size_t(OpKind::VarFence) < OpKindSlots,
              "OpKindSlots must cover every OpKind");

const char *fsmc::obs::counterName(Counter C) {
  switch (C) {
  case Counter::Executions:
    return "executions";
  case Counter::Transitions:
    return "transitions";
  case Counter::Preemptions:
    return "preemptions";
  case Counter::ReplaySteps:
    return "replay_steps";
  case Counter::SchedulePoints:
    return "schedule_points";
  case Counter::SyncContention:
    return "sync_contention";
  case Counter::FairEdgeAdds:
    return "fair_edge_adds";
  case Counter::FairEdgeRemovals:
    return "fair_edge_removals";
  case Counter::StatefulPrunes:
    return "stateful_prunes";
  case Counter::NonterminatingExecutions:
    return "nonterminating_executions";
  case Counter::BugsFound:
    return "bugs_found";
  case Counter::Deadlocks:
    return "deadlocks";
  case Counter::Livelocks:
    return "livelocks";
  case Counter::GoodSamaritanViolations:
    return "good_samaritan_violations";
  case Counter::WorkItemsRun:
    return "work_items_run";
  case Counter::PrefixesDonated:
    return "prefixes_donated";
  case Counter::PorSleepHits:
    return "por_sleep_hits";
  case Counter::PorBranchesPruned:
    return "por_branches_pruned";
  case Counter::PorFairWakes:
    return "por_fair_wakes";
  case Counter::Divergences:
    return "divergences";
  case Counter::DivergenceRetries:
    return "divergence_retries";
  case Counter::Crashes:
    return "crashes";
  case Counter::Hangs:
    return "hangs";
  case Counter::Checkpoints:
    return "checkpoints";
  case Counter::RacesChecked:
    return "races_checked";
  case Counter::RacesFound:
    return "races_found";
  case Counter::FleetWorkerCrashes:
    return "fleet_worker_crashes";
  case Counter::FleetReissues:
    return "fleet_reissues";
  case Counter::FleetRespawns:
    return "fleet_respawns";
  case Counter::FleetQuarantined:
    return "fleet_quarantined";
  case Counter::BufferedStores:
    return "buffered_stores";
  case Counter::StoreFlushes:
    return "store_flushes";
  case Counter::Steals:
    return "steals";
  case Counter::StealFails:
    return "steal_fails";
  case Counter::QueueLockAcquires:
    return "queue_lock_acquires";
  case Counter::MergeNs:
    return "merge_ns";
  case Counter::DonationBytes:
    return "donation_bytes";
  case Counter::NumCounters:
    break;
  }
  return "?";
}

const char *fsmc::obs::gaugeName(Gauge G) {
  switch (G) {
  case Gauge::WorkQueueDepth:
    return "workqueue_depth";
  case Gauge::MaxDepth:
    return "max_depth";
  case Gauge::ActiveWorkers:
    return "active_workers";
  case Gauge::NumGauges:
    break;
  }
  return "?";
}

const char *fsmc::obs::phaseName(Phase P) {
  switch (P) {
  case Phase::Replay:
    return "replay";
  case Phase::Execute:
    return "execute";
  case Phase::RaceCheck:
    return "race_check";
  case Phase::Snapshot:
    return "snapshot";
  case Phase::NumPhases:
    break;
  }
  return "?";
}

static uint64_t doubleBits(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof B);
  return B;
}

static double bitsDouble(uint64_t B) {
  double D;
  std::memcpy(&D, &B, sizeof D);
  return D;
}

void WorkerCounters::addEstimateMass(double M) {
  double Cur = bitsDouble(EstMassBits.load(std::memory_order_relaxed));
  EstMassBits.store(doubleBits(Cur + M), std::memory_order_relaxed);
}

void WorkerCounters::addLatencyNs(uint64_t Ns) {
  unsigned Bucket = 0;
  while (Bucket + 1 < LatencyBuckets && (uint64_t(1) << (Bucket + 1)) <= Ns)
    ++Bucket;
  auto &A = Latency[Bucket];
  A.store(A.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

CounterRegistry::CounterRegistry(size_t MaxWorkers)
    : Shards(new WorkerCounters[MaxWorkers ? MaxWorkers : 1]),
      NumShards(MaxWorkers ? MaxWorkers : 1) {}

WorkerCounters &CounterRegistry::shard(unsigned Worker) {
  return Shards[Worker < NumShards ? Worker : NumShards - 1];
}

CounterSnapshot CounterRegistry::snapshot() const {
  CounterSnapshot S;
  for (size_t I = 0; I < NumShards; ++I) {
    const WorkerCounters &W = Shards[I];
    for (size_t K = 0; K < size_t(Counter::NumCounters); ++K)
      S.C[K] += W.C[K].load(std::memory_order_relaxed);
    for (size_t K = 0; K < OpKindSlots; ++K) {
      S.Ops[K] += W.Ops[K].load(std::memory_order_relaxed);
      S.Contended[K] += W.Contended[K].load(std::memory_order_relaxed);
    }
    for (size_t K = 0; K < LatencyBuckets; ++K)
      S.Latency[K] += W.Latency[K].load(std::memory_order_relaxed);
    for (size_t K = 0; K < size_t(Phase::NumPhases); ++K)
      S.PhaseNs[K] += W.PhaseNs[K].load(std::memory_order_relaxed);
    S.EstimateMass +=
        bitsDouble(W.EstMassBits.load(std::memory_order_relaxed));
    uint64_t Depth = W.G[size_t(Gauge::MaxDepth)].load(std::memory_order_relaxed);
    if (Depth > S.G[size_t(Gauge::MaxDepth)])
      S.G[size_t(Gauge::MaxDepth)] = Depth;
    S.G[size_t(Gauge::WorkQueueDepth)] +=
        W.G[size_t(Gauge::WorkQueueDepth)].load(std::memory_order_relaxed);
    S.G[size_t(Gauge::ActiveWorkers)] +=
        W.G[size_t(Gauge::ActiveWorkers)].load(std::memory_order_relaxed);
  }
  return S;
}
