//===- obs/SearchProfile.h - Schedule-point hotspot profiling --*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Where does the interleaving explosion come from? The profile answers
/// by attributing every *fresh* DFS branch point (a scheduling or data
/// choice with >= 2 alternatives, pushed for the first time -- replayed
/// prefixes are not re-counted) to the visible operation class and the
/// modeled object at that point, plus branch-factor and depth
/// distributions and per-class POR-pruning attribution.
///
/// Collection is gated on CheckerOptions::ProfileSearch and costs one
/// pointer test per transition when off. Parallel workers and resumed run
/// parts each fill a private profile, merged with merge() -- the same
/// single-writer-then-sum discipline as SearchStats.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_SEARCHPROFILE_H
#define FSMC_OBS_SEARCHPROFILE_H

#include "obs/Counters.h"

#include <cstdint>
#include <map>
#include <string>

namespace fsmc {
namespace obs {

/// Branch-factor histogram: bucket i counts branch points with i + 2
/// alternatives; the last bucket absorbs everything wider.
constexpr size_t ProfileBranchBuckets = 16;
/// Depth histogram: log2 buckets, bucket i counts branch points at
/// transition depth in [2^i - 1, 2^(i+1) - 1).
constexpr size_t ProfileDepthBuckets = 32;

/// Schedule-point hotspot profile (CheckResult::Profile).
struct SearchProfile {
  struct OpClassStats {
    /// Fresh DFS branch points attributed to this class.
    uint64_t BranchPoints = 0;
    /// Untried alternatives those points opened: sum of (branch factor
    /// - 1) -- the future work the class generated.
    uint64_t Alternatives = 0;
    /// Sleeping candidates of this class filtered by POR (--por=on):
    /// which op classes the reduction is earning its keep on.
    uint64_t PorSleepHits = 0;

    void merge(const OpClassStats &O) {
      BranchPoints += O.BranchPoints;
      Alternatives += O.Alternatives;
      PorSleepHits += O.PorSleepHits;
    }
    bool empty() const {
      return !BranchPoints && !Alternatives && !PorSleepHits;
    }
  };

  /// Scheduling branch points by the executed operation's kind
  /// (indexed by OpKind; same slot layout as WorkerCounters::Ops).
  OpClassStats Ops[OpKindSlots];
  /// Data-nondeterminism branch points (Runtime::chooseInt).
  OpClassStats Choose;
  /// Per-object attribution, keyed by the runtime object name; a std::map
  /// so reports iterate in a deterministic order.
  std::map<std::string, OpClassStats> Objects;
  uint64_t BranchFactor[ProfileBranchBuckets] = {};
  uint64_t Depth[ProfileDepthBuckets] = {};

  /// Records one fresh branch point: \p Num alternatives at transition
  /// depth \p D, attributed to op slot \p Kind (histograms included).
  void noteBranch(unsigned Kind, int Num, uint64_t D);
  /// Records the same point against object \p Name (empty = skip).
  void noteObject(const std::string &Name, int Num);
  /// Records a chooseInt branch point (histograms included).
  void noteChoose(int Num, uint64_t D);
  /// Records \p N sleeping candidates of op slot \p Kind filtered by POR.
  void notePorSleep(unsigned Kind, uint64_t N = 1);

  /// Total scheduling + data branch points recorded.
  uint64_t totalBranchPoints() const;

  void merge(const SearchProfile &O);
};

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_SEARCHPROFILE_H
