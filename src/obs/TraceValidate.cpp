//===- obs/TraceValidate.cpp ----------------------------------------------===//

#include "obs/TraceValidate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace fsmc;
using namespace fsmc::obs;

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (T != Type::Object)
    return nullptr;
  for (const auto &[K, V] : Obj)
    if (K == Key)
      return &V;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a bounded view. The traces it targets
/// are machine-written, so diagnostics carry offsets, not line numbers.
class Parser {
public:
  Parser(std::string_view Text, std::string &Err) : S(Text), Err(Err) {}

  bool parseValue(JsonValue &Out) {
    skipWs();
    if (Pos >= S.size())
      return fail("unexpected end of input");
    switch (S[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.T = JsonValue::Type::String;
      return parseString(Out.Str);
    case 't':
      Out.T = JsonValue::Type::Bool;
      Out.B = true;
      return expect("true");
    case 'f':
      Out.T = JsonValue::Type::Bool;
      Out.B = false;
      return expect("false");
    case 'n':
      Out.T = JsonValue::Type::Null;
      return expect("null");
    default:
      return parseNumber(Out);
    }
  }

  bool atEnd() {
    skipWs();
    return Pos >= S.size();
  }

  size_t position() const { return Pos; }

private:
  bool fail(const std::string &Msg) {
    Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool expect(std::string_view Word) {
    if (S.substr(Pos, Word.size()) != Word)
      return fail("expected '" + std::string(Word) + "'");
    Pos += Word.size();
    return true;
  }

  bool parseString(std::string &Out) {
    if (S[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      char Ch = S[Pos];
      if (Ch == '\\') {
        if (Pos + 1 >= S.size())
          return fail("dangling escape");
        char E = S[Pos + 1];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 5 >= S.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = S[Pos + 2 + I];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= unsigned(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= unsigned(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= unsigned(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // Traces are ASCII; keep non-ASCII code points as '?' rather
          // than implementing UTF-8 encoding nobody produces.
          Out += Code < 0x80 ? char(Code) : '?';
          Pos += 4;
          break;
        }
        default:
          return fail("unknown escape");
        }
        Pos += 2;
        continue;
      }
      if (uint8_t(Ch) < 0x20)
        return fail("raw control character in string");
      Out += Ch;
      ++Pos;
    }
    if (Pos >= S.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(uint8_t(S[Pos])) || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '+' ||
            S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    std::string Num(S.substr(Start, Pos - Start));
    char *End = nullptr;
    Out.T = JsonValue::Type::Number;
    Out.Num = std::strtod(Num.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number '" + Num + "'");
    return true;
  }

  bool parseObject(JsonValue &Out) {
    Out.T = JsonValue::Type::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (Pos >= S.size() || S[Pos] != '"')
        return fail("expected object key");
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.T = JsonValue::Type::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  std::string_view S;
  size_t Pos = 0;
  std::string &Err;
};

bool readFile(const std::string &Path, std::string &Out, std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot read '" + Path + "'";
    return false;
  }
  char Buf[16384];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

/// Serializes \p V with object keys sorted, for order-insensitive
/// comparison. Integral numbers print without a fraction so 5 and 5.0
/// normalize identically.
void serializeCanonical(const JsonValue &V, std::string &Out) {
  switch (V.T) {
  case JsonValue::Type::Null:
    Out += "null";
    return;
  case JsonValue::Type::Bool:
    Out += V.B ? "true" : "false";
    return;
  case JsonValue::Type::Number: {
    double Int;
    char Buf[40];
    if (std::modf(V.Num, &Int) == 0 && std::fabs(V.Num) < 1e15)
      std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V.Num);
    else
      std::snprintf(Buf, sizeof(Buf), "%.17g", V.Num);
    Out += Buf;
    return;
  }
  case JsonValue::Type::String:
    Out += '"';
    Out += V.Str; // canonical form is for comparison, not re-parsing
    Out += '"';
    return;
  case JsonValue::Type::Array:
    Out += '[';
    for (size_t I = 0; I < V.Arr.size(); ++I) {
      if (I)
        Out += ',';
      serializeCanonical(V.Arr[I], Out);
    }
    Out += ']';
    return;
  case JsonValue::Type::Object: {
    std::vector<const std::pair<std::string, JsonValue> *> Members;
    Members.reserve(V.Obj.size());
    for (const auto &M : V.Obj)
      Members.push_back(&M);
    std::sort(Members.begin(), Members.end(),
              [](const auto *A, const auto *B) { return A->first < B->first; });
    Out += '{';
    bool First = true;
    for (const auto *M : Members) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += M->first;
      Out += "\":";
      serializeCanonical(M->second, Out);
    }
    Out += '}';
    return;
  }
  }
}

bool isMeta(const JsonValue &Ev) {
  const JsonValue *Cat = Ev.find("cat");
  return Cat && Cat->T == JsonValue::Type::String && Cat->Str == "meta";
}

} // namespace

bool fsmc::obs::parseJson(std::string_view Text, JsonValue &Out,
                          std::string &Err) {
  Parser P(Text, Err);
  if (!P.parseValue(Out))
    return false;
  if (!P.atEnd()) {
    Err = "trailing garbage at offset " + std::to_string(P.position());
    return false;
  }
  return true;
}

bool fsmc::obs::parseJsonFile(const std::string &Path, JsonValue &Out,
                              std::string &Err) {
  std::string Text;
  if (!readFile(Path, Text, Err))
    return false;
  return parseJson(Text, Out, Err);
}

bool fsmc::obs::validateTraceFile(const std::string &Path, std::string &Err,
                                  size_t *EventCount) {
  JsonValue Root;
  if (!parseJsonFile(Path, Root, Err))
    return false;
  if (Root.T != JsonValue::Type::Array) {
    Err = "trace is not a JSON array";
    return false;
  }
  if (Root.Arr.size() < 2 || !isMeta(Root.Arr.front()) ||
      !isMeta(Root.Arr.back())) {
    Err = "trace lacks the leading/terminal meta records";
    return false;
  }
  size_t Events = 0;
  for (size_t I = 0; I < Root.Arr.size(); ++I) {
    const JsonValue &Ev = Root.Arr[I];
    auto Fail = [&](const char *Msg) {
      Err = "event " + std::to_string(I) + ": " + Msg;
      return false;
    };
    if (!Ev.isObject())
      return Fail("not an object");
    const JsonValue *Name = Ev.find("name");
    const JsonValue *Cat = Ev.find("cat");
    const JsonValue *Ph = Ev.find("ph");
    if (!Name || Name->T != JsonValue::Type::String || Name->Str.empty())
      return Fail("missing string 'name'");
    if (!Cat || Cat->T != JsonValue::Type::String)
      return Fail("missing string 'cat'");
    if (!Ph || Ph->T != JsonValue::Type::String ||
        (Ph->Str != "X" && Ph->Str != "i" && Ph->Str != "M"))
      return Fail("'ph' must be one of X / i / M");
    for (const char *Key : {"ts", "pid", "tid"}) {
      const JsonValue *V = Ev.find(Key);
      if (!V || V->T != JsonValue::Type::Number)
        return Fail("missing numeric ts/pid/tid");
    }
    if (Ph->Str == "X") {
      const JsonValue *Dur = Ev.find("dur");
      if (!Dur || Dur->T != JsonValue::Type::Number)
        return Fail("'X' event missing numeric 'dur'");
    }
    // args is optional, but when present it must be an object, and the
    // typed fields the exporter can emit must have their declared types.
    // Unknown args keys pass: readers skip fields they don't know, so the
    // schema stays forward-compatible as new telemetry lands.
    if (const JsonValue *Args = Ev.find("args")) {
      if (!Args->isObject())
        return Fail("'args' is not an object");
      if (const JsonValue *Mass = Args->find("mass")) {
        if (Mass->T != JsonValue::Type::Number || Mass->Num <= 0 ||
            Mass->Num > 1.0)
          return Fail("'args.mass' must be a number in (0, 1]");
      }
      for (const char *Key : {"steps", "step"}) {
        const JsonValue *V = Args->find(Key);
        if (V && V->T != JsonValue::Type::Number)
          return Fail("'args.steps'/'args.step' must be numeric");
      }
      if (const JsonValue *End = Args->find("end")) {
        if (End->T != JsonValue::Type::String)
          return Fail("'args.end' must be a string");
      }
    }
    if (!isMeta(Ev))
      ++Events;
  }
  if (EventCount)
    *EventCount = Events;
  return true;
}

bool fsmc::obs::loadNormalizedEvents(
    const std::string &Path, bool StripWorkerAndTime,
    const std::vector<std::string> &DropCategories,
    std::vector<std::string> &Out, std::string &Err) {
  JsonValue Root;
  if (!parseJsonFile(Path, Root, Err))
    return false;
  if (Root.T != JsonValue::Type::Array) {
    Err = "trace is not a JSON array";
    return false;
  }
  for (const JsonValue &Ev : Root.Arr) {
    if (!Ev.isObject() || isMeta(Ev))
      continue;
    const JsonValue *Cat = Ev.find("cat");
    std::string CatStr =
        Cat && Cat->T == JsonValue::Type::String ? Cat->Str : "";
    if (std::find(DropCategories.begin(), DropCategories.end(), CatStr) !=
        DropCategories.end())
      continue;
    JsonValue Stripped;
    Stripped.T = JsonValue::Type::Object;
    for (const auto &[K, V] : Ev.Obj) {
      if (StripWorkerAndTime && (K == "pid" || K == "ts"))
        continue;
      Stripped.Obj.emplace_back(K, V);
    }
    std::string Line;
    serializeCanonical(Stripped, Line);
    Out.push_back(std::move(Line));
  }
  return true;
}
