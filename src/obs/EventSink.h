//===- obs/EventSink.h - Structured search events --------------*- C++ -*-===//
//
// Part of the fsmc project: a reproduction of "Fair Stateless Model
// Checking" (Musuvathi & Qadeer, PLDI 2008).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured events emitted by the search, and the JSONL trace exporter.
///
/// Events describe either the *explored tree* (transitions, execution
/// spans, priority-edge churn, divergence classifications, bugs -- the
/// category "transition"/"execution"/"fairness"/"verdict") or the *search
/// engine itself* (work-item pops, donations -- category "par"). The
/// split matters for determinism: for a fixed program, seed and options,
/// the multiset of tree-scoped events is identical at every --jobs width
/// (the shards partition the choice tree exactly), while engine-scoped
/// events exist only in parallel runs. The trace-determinism tests key on
/// this: serial traces are byte-identical, parallel traces agree on the
/// tree-scoped multiset after stripping worker/timestamp fields.
///
/// Timestamps are *logical*: each worker advances its clock by one per
/// transition. That keeps serial traces bit-reproducible (no wall clock)
/// while still giving Perfetto a monotonic time axis per worker.
///
/// The exporter writes the Chrome trace_event JSON array format, one
/// event object per line, so the file is simultaneously (a) valid JSON
/// loadable in Perfetto / chrome://tracing and (b) line-structured for
/// grep/jq-style processing. Execution and transition events are "X"
/// (complete) spans; everything else is an "i" (instant) event.
///
//===----------------------------------------------------------------------===//

#ifndef FSMC_OBS_EVENTSINK_H
#define FSMC_OBS_EVENTSINK_H

#include "runtime/PendingOp.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace fsmc {

class OutStream;

namespace obs {

/// What happened. See EventSink.cpp for the stable wire names.
enum class EventKind : uint8_t {
  Transition,    ///< One step: thread Tid ran op Op on object Object.
  ExecutionEnd,  ///< An execution finished; span of the whole execution.
  FairEdgeAdd,   ///< Priority edges added after a yield (count in ArgA).
  FairEdgeRemove,///< Priority edges removed into the scheduled thread.
  Divergence,    ///< Execution-bound hit; Detail holds the class.
  BugFound,      ///< A verdict other than Pass; Detail holds its name.
  WorkItemStart, ///< Parallel: a worker popped a prefix (depth in ArgA).
  Donation,      ///< Parallel: prefixes split off (count in ArgA).
};

/// One event. Plain-old-data so emitting one costs a few stores.
struct ObsEvent {
  EventKind Kind = EventKind::Transition;
  unsigned Worker = 0;   ///< Shard / OS worker id (pid in the trace).
  int Thread = -1;       ///< Test-thread id (tid in the trace), -1 if n/a.
  uint64_t Ts = 0;       ///< Logical time: transitions seen by this worker.
  uint64_t Dur = 0;      ///< Span length in logical time (X events).
  OpKind Op = OpKind::ThreadStart; ///< For Transition events.
  int Object = -1;       ///< Sync-object id of the op, -1 if none.
  uint64_t ArgA = 0;     ///< Kind-specific (step index, edge count, ...).
  uint64_t ArgB = 0;     ///< Kind-specific.
  const char *Detail = nullptr; ///< Static string (verdict name, ...).
  /// ExecutionEnd only: the execution's Knuth leaf mass (product of
  /// 1/branch-factor along its path) when tree-size estimation is on.
  /// Negative = absent; the trace line then carries no "mass" field, so
  /// estimator-off traces keep their historical bytes.
  double Mass = -1;
};

const char *eventKindName(EventKind K);
/// Category string for the Chrome `cat` field; engine-scoped events
/// ("par") are excluded from cross-jobs determinism comparisons.
const char *eventCategory(EventKind K);

/// Receives events. Implementations must be thread-safe: parallel workers
/// emit concurrently.
class EventSink {
public:
  virtual ~EventSink();
  virtual void event(const ObsEvent &E) = 0;
  virtual void flush() {}
};

/// Writes events as a Chrome trace_event JSON array, one event per line
/// (see file comment). The stream is valid JSON once close() runs and
/// still loads in Perfetto if the process dies mid-trace (the array
/// format tolerates a missing terminator).
///
/// Output goes through OutStream, so "-" routes the trace to stdout and
/// each event line lands atomically with respect to the progress
/// reporter, summaries and stats-json sharing the terminal.
class JsonlTraceSink final : public EventSink {
public:
  /// Opens \p Path for writing ("-" = stdout); valid() reports failure.
  explicit JsonlTraceSink(const std::string &Path);
  ~JsonlTraceSink() override;

  bool valid() const { return Out != nullptr; }

  void event(const ObsEvent &E) override;
  void flush() override;
  /// Writes the trailing summary record and the array terminator.
  /// Idempotent; also run by the destructor.
  void close();

private:
  OutStream *Out = nullptr;         ///< Where events go; null = open failed.
  std::unique_ptr<OutStream> Owned; ///< Backing file stream, unless stdout.
  std::mutex M;                     ///< Guards Emitted and Closed.
  uint64_t Emitted = 0;
  bool Closed = false;
};

} // namespace obs
} // namespace fsmc

#endif // FSMC_OBS_EVENTSINK_H
