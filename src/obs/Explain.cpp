//===- obs/Explain.cpp ----------------------------------------------------===//

#include "obs/Explain.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace fsmc;
using namespace fsmc::obs;

/// "{0,2,5}" for a thread-id bitmask.
static std::string renderMask(uint64_t Mask) {
  std::string Out = "{";
  bool First = true;
  for (int T = 0; T < 64; ++T)
    if ((Mask >> T) & 1) {
      if (!First)
        Out += ",";
      Out += std::to_string(T);
      First = false;
    }
  Out += "}";
  return Out;
}

static void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  vsnprintf(Buf, sizeof Buf, Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

std::string fsmc::obs::renderExplainTimeline(const ExplainLog &Log,
                                             const CheckResult &R,
                                             const std::string &ProgramName) {
  std::string Out;
  appendf(Out, "fsmc explain: %s\n", ProgramName.c_str());
  appendf(Out, "verdict: %s\n", verdictName(R.Kind));
  if (R.Bug)
    appendf(Out, "bug: %s (at step %" PRIu64 ")\n", R.Bug->Message.c_str(),
            R.Bug->AtStep);
  appendf(Out, "steps: %zu  end: %s\n", Log.Steps.size(),
          Log.EndDetail.empty() ? "?" : Log.EndDetail.c_str());

  // Column widths sized to the content so the table stays readable for
  // long thread or object names.
  size_t NameW = 6, OpW = 9;
  for (const ExplainStep &S : Log.Steps) {
    NameW = std::max(NameW, S.ThreadName.size());
    size_t OpLen = std::string(opKindName(S.Op)).size() +
                   (S.Object.empty() ? 0 : S.Object.size() + 1);
    OpW = std::max(OpW, OpLen);
  }

  // The bug fires on its last executed transition -- except a deadlock,
  // which is a property of the state *after* the last step, spelled out
  // in the cycle section below instead.
  size_t FailIdx = size_t(-1);
  if (R.Bug && R.Kind != Verdict::Deadlock && !Log.Steps.empty() &&
      Log.EndDetail == "bug")
    FailIdx = Log.Steps.size() - 1;

  appendf(Out, "\n%5s  %-*s  %-*s  %-12s  %s\n", "step", int(NameW), "thread",
          int(OpW), "operation", "enabled", "notes");
  for (size_t I = 0; I < Log.Steps.size(); ++I) {
    const ExplainStep &S = Log.Steps[I];
    std::string Op = opKindName(S.Op);
    if (!S.Object.empty())
      Op += " " + S.Object;
    std::string Notes;
    if (S.Choices > 1)
      appendf(Notes, "%d-way choice, picked %d", S.Choices, S.ChosenIdx);
    if (S.SleepMask) {
      if (!Notes.empty())
        Notes += "; ";
      Notes += "sleep=" + renderMask(S.SleepMask);
    }
    if (S.WasYield) {
      if (!Notes.empty())
        Notes += "; ";
      Notes += "yield";
    }
    if (I == FailIdx) {
      if (!Notes.empty())
        Notes += "; ";
      Notes += "<<< fails here";
    }
    appendf(Out, "%5zu  %-*s  %-*s  %-12s  %s\n", I, int(NameW),
            S.ThreadName.c_str(), int(OpW), Op.c_str(),
            renderMask(S.EnabledMask).c_str(), Notes.c_str());
  }

  if (!Log.Blocked.empty()) {
    appendf(Out, "\ndeadlock: %zu threads blocked, none enabled\n",
            Log.Blocked.size());
    for (const ExplainBlocked &B : Log.Blocked) {
      std::string On = opKindName(B.Op);
      if (!B.Object.empty())
        On += " on " + B.Object;
      appendf(Out, "  %s waits for %s\n", B.ThreadName.c_str(), On.c_str());
    }
  }

  bool RaceHeader = false;
  for (const BugReport &I : R.Incidents)
    if (I.Kind == Verdict::DataRace) {
      if (!RaceHeader) {
        Out += "\ndata races on this schedule:\n";
        RaceHeader = true;
      }
      appendf(Out, "  %s\n", I.Message.c_str());
    }
  return Out;
}
